//! The task-allocation algorithm (paper §4.3, Fig. 3) and baselines.
//!
//! The Resource Manager "uses the Breadth-First-Search (BFS) algorithm to
//! search for services (edges) connecting the initial and final requested
//! application states, prunes the possible solutions using the requested
//! QoS requirements `q` … among the allocations that satisfy the QoS
//! requirements, the algorithm returns the one that results to the maximum
//! fairness of the load distribution among the peers."
//!
//! This module implements that algorithm as a pure function over the
//! resource graph and the RM's peer view, plus:
//!
//! * an [`ExplorationMode`] knob: [`ExplorationMode::AllSimplePaths`]
//!   (default) enumerates every cycle-free path with QoS pruning, which is
//!   what maximising fairness *requires*; [`ExplorationMode::GlobalVisited`]
//!   is the literal reading of the Fig. 3 pseudocode, where a global
//!   visited set lets only the first BFS path reach each vertex — it
//!   under-explores and is kept as an ablation (experiment E3 compares
//!   them);
//! * the baseline allocators used in the evaluation
//!   ([`AllocatorKind::FirstFeasible`], [`AllocatorKind::Random`],
//!   [`AllocatorKind::LeastLoaded`], [`AllocatorKind::MinWork`]).
//!
//! # QoS feasibility of a path
//!
//! A candidate path `e_1 … e_k` is feasible for requirement set `q` iff
//!
//! 1. `k ≤ q.max_hops` (if bounded);
//! 2. for every peer `p` on the path, `p`'s available bandwidth covers the
//!    accumulated bandwidth cost of the path's hops on `p`, and — if
//!    `q.min_bandwidth_kbps` is set — also that floor;
//! 3. for every peer `p`, `p`'s available processing capacity covers the
//!    accumulated sustained work of the path's hops on `p` (the session
//!    must be sustainable);
//! 4. the estimated response time — per-hop setup computation at the
//!    peer's *currently available* speed plus a per-hop communication
//!    latency — fits within `q.deadline` ("it calculates which paths
//!    satisfy the deadline by utilizing the current load information").

use crate::peerview::PeerView;
use crate::qos::QosSpec;
use crate::resource_graph::{EdgeId, ResourceGraph, StateId};
use arm_util::{DetRng, FairnessTracker, NodeId, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How the path space is explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExplorationMode {
    /// Enumerate all simple (cycle-free) paths, pruning by QoS. Required
    /// for a true fairness argmax. Default.
    #[default]
    AllSimplePaths,
    /// Literal Fig. 3 pseudocode: a global visited set — each vertex is
    /// expanded at most once, so only the first BFS path to the goal is
    /// scored. Cheaper, but under-explores. Kept as an ablation.
    GlobalVisited,
    /// Greedy best-first: the frontier is ordered by the fairness of the
    /// path prefix, so high-fairness completions surface early. With the
    /// same `max_explored` cap this is the right mode for *dense* graphs
    /// (e.g. 64-peer domains, see experiment E14), where full enumeration
    /// truncates before finding good paths. Explores the same simple-path
    /// space as [`ExplorationMode::AllSimplePaths`]; only the order (and
    /// hence what a truncated search sees) differs.
    BestFirst,
}

/// Which objective picks among feasible paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AllocatorKind {
    /// The paper's algorithm: maximise Jain's fairness index of the
    /// post-allocation load distribution.
    #[default]
    MaxFairness,
    /// First feasible path in BFS order (shortest-ish, load-agnostic).
    FirstFeasible,
    /// Uniformly random feasible path (needs an RNG).
    Random,
    /// Minimise the resulting maximum peer utilization (classic
    /// least-loaded / min-makespan greedy).
    LeastLoaded,
    /// Minimise total sustained work of the path (efficiency-greedy,
    /// ignores balance).
    MinWork,
}

/// Tuning parameters of the search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocParams {
    /// Estimated one-hop communication latency used in deadline pruning.
    pub hop_latency: SimDuration,
    /// Cap on the number of paths dequeued before the search gives up
    /// enumerating (guards against exponential blowup on dense graphs).
    /// The result is flagged `truncated` when the cap is hit.
    pub max_explored: usize,
    /// Path-space exploration mode.
    pub mode: ExplorationMode,
}

impl Default for AllocParams {
    fn default() -> Self {
        Self {
            hop_latency: SimDuration::from_millis(20),
            max_explored: 200_000,
            mode: ExplorationMode::AllSimplePaths,
        }
    }
}

/// A successful allocation: the chosen path and its predicted effects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// The chosen resource-graph path (empty = the initial state already
    /// satisfies the request; a direct fetch).
    pub path: Vec<EdgeId>,
    /// Jain's fairness index of the domain load distribution *after*
    /// committing this path (`f_max` of Fig. 3).
    pub fairness: f64,
    /// Estimated response time (setup) of the path.
    pub est_response: SimDuration,
    /// Sustained work the path adds to each involved peer.
    pub load_deltas: Vec<(NodeId, f64)>,
    /// Number of candidate paths dequeued during the search.
    pub explored: usize,
    /// True if the exploration cap was hit (the argmax may be approximate).
    pub truncated: bool,
}

/// Why allocation failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// The initial or goal state is not in the resource graph.
    UnknownState,
    /// No goal states were supplied.
    NoGoal,
    /// The domain has no peers.
    EmptyDomain,
    /// Paths exist but none satisfies the QoS requirements
    /// ("if no allocation that satisfies the given QoS exists, the
    /// algorithm reports that").
    NoFeasiblePath {
        /// How many candidate paths were examined.
        explored: usize,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::UnknownState => write!(f, "initial or goal state not in resource graph"),
            AllocError::NoGoal => write!(f, "no goal states supplied"),
            AllocError::EmptyDomain => write!(f, "domain has no peers"),
            AllocError::NoFeasiblePath { explored } => {
                write!(f, "no QoS-feasible path (explored {explored} candidates)")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// The allocator: parameters + objective.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FairnessAllocator {
    /// Search tuning.
    pub params: AllocParams,
    /// Selection objective.
    pub kind: AllocatorKind,
}

/// Per-path accumulator carried through the BFS queue.
#[derive(Debug, Clone)]
struct PathState {
    vertex: StateId,
    edges: Vec<EdgeId>,
    /// (peer, accumulated work/s) pairs — tiny vectors, linear scans.
    work: Vec<(NodeId, f64)>,
    /// (peer, accumulated bandwidth kbps).
    bw: Vec<(NodeId, u32)>,
    /// Estimated response time so far, in seconds.
    est_secs: f64,
}

impl FairnessAllocator {
    /// Creates the paper's default allocator.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Creates an allocator with a specific objective.
    pub fn with_kind(kind: AllocatorKind) -> Self {
        Self {
            kind,
            ..Self::default()
        }
    }

    /// Runs the allocation algorithm.
    ///
    /// `rng` is only consulted by [`AllocatorKind::Random`]; pass `None`
    /// otherwise. See the module docs for the feasibility rules.
    pub fn allocate(
        &self,
        gr: &ResourceGraph,
        view: &PeerView,
        init: StateId,
        goals: &[StateId],
        qos: &QosSpec,
        rng: Option<&mut DetRng>,
    ) -> Result<Allocation, AllocError> {
        if goals.is_empty() {
            return Err(AllocError::NoGoal);
        }
        if view.is_empty() {
            return Err(AllocError::EmptyDomain);
        }
        if init.0 as usize >= gr.num_states()
            || goals.iter().any(|g| g.0 as usize >= gr.num_states())
        {
            return Err(AllocError::UnknownState);
        }

        // Node order for the fairness tracker (PeerView iterates sorted).
        let ids: Vec<NodeId> = view.ids().collect();
        let tracker = FairnessTracker::from_loads(view.loads());
        let peer_index = |n: NodeId| ids.binary_search(&n).ok();

        let deadline_secs = qos.deadline.as_secs_f64();
        let hop_latency_secs = self.params.hop_latency.as_secs_f64();

        // Candidates that reached a goal, with their scores.
        struct Candidate {
            path: Vec<EdgeId>,
            fairness: f64,
            est_secs: f64,
            work: Vec<(NodeId, f64)>,
            max_util: f64,
            total_work: f64,
        }
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut explored = 0usize;
        let mut truncated = false;

        // The frontier: FIFO for (literal) BFS modes, a max-heap keyed by
        // prefix fairness for best-first.
        struct BestEntry {
            priority: f64,
            seq: u64,
            state: PathState,
        }
        impl PartialEq for BestEntry {
            fn eq(&self, other: &Self) -> bool {
                self.priority == other.priority && self.seq == other.seq
            }
        }
        impl Eq for BestEntry {}
        impl PartialOrd for BestEntry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for BestEntry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Max-heap on priority; FIFO (lower seq first) among ties
                // for determinism.
                self.priority
                    .partial_cmp(&other.priority)
                    .expect("fairness is never NaN")
                    .then_with(|| other.seq.cmp(&self.seq))
            }
        }
        enum Frontier {
            Fifo(VecDeque<PathState>),
            Best(std::collections::BinaryHeap<BestEntry>, u64),
        }
        impl Frontier {
            fn pop(&mut self) -> Option<PathState> {
                match self {
                    Frontier::Fifo(q) => q.pop_front(),
                    Frontier::Best(h, _) => h.pop().map(|e| e.state),
                }
            }
            fn push(&mut self, state: PathState, priority: f64) {
                match self {
                    Frontier::Fifo(q) => q.push_back(state),
                    Frontier::Best(h, seq) => {
                        *seq += 1;
                        h.push(BestEntry {
                            priority,
                            seq: *seq,
                            state,
                        });
                    }
                }
            }
        }
        let mut queue = match self.params.mode {
            ExplorationMode::BestFirst => Frontier::Best(std::collections::BinaryHeap::new(), 0),
            _ => Frontier::Fifo(VecDeque::new()),
        };
        // Scores a prefix for best-first ordering: the fairness of the
        // domain if the prefix's work were committed.
        let prefix_priority = |work: &[(NodeId, f64)]| -> f64 {
            let mut deltas: Vec<(usize, f64)> = Vec::with_capacity(work.len());
            for &(peer, w) in work {
                match peer_index(peer) {
                    Some(i) => deltas.push((i, w)),
                    None => return 0.0,
                }
            }
            tracker.index_with(&deltas)
        };
        queue.push(
            PathState {
                vertex: init,
                edges: Vec::new(),
                work: Vec::new(),
                bw: Vec::new(),
                est_secs: 0.0,
            },
            1.0,
        );
        let mut visited = vec![false; gr.num_states()]; // GlobalVisited mode only

        while let Some(ps) = queue.pop() {
            if explored >= self.params.max_explored {
                truncated = true;
                break;
            }
            explored += 1;

            if self.params.mode == ExplorationMode::GlobalVisited {
                if visited[ps.vertex.0 as usize] {
                    continue;
                }
                visited[ps.vertex.0 as usize] = true;
            }

            if goals.contains(&ps.vertex) {
                // Score the completed path.
                let mut deltas: Vec<(usize, f64)> = Vec::with_capacity(ps.work.len());
                let mut ok = true;
                for &(peer, w) in &ps.work {
                    match peer_index(peer) {
                        Some(i) => deltas.push((i, w)),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let fairness = tracker.index_with(&deltas);
                let max_util = deltas
                    .iter()
                    .map(|&(i, w)| {
                        let info = view.get(ids[i]).expect("indexed peer");
                        if info.capacity > 0.0 {
                            (info.load + w) / info.capacity
                        } else {
                            f64::INFINITY
                        }
                    })
                    .fold(0.0f64, f64::max);
                let total_work: f64 = ps.work.iter().map(|&(_, w)| w).sum();
                candidates.push(Candidate {
                    path: ps.edges.clone(),
                    fairness,
                    est_secs: ps.est_secs,
                    work: ps.work.clone(),
                    max_util,
                    total_work,
                });
                if self.kind == AllocatorKind::FirstFeasible {
                    break; // first complete feasible path in BFS order
                }
                // A goal vertex may still have outgoing edges (another goal
                // further on is possible but pointless); stop extending.
                continue;
            }

            // Expand. Hop-count prune before generating children.
            if let Some(max_hops) = qos.max_hops {
                if ps.edges.len() >= max_hops {
                    continue;
                }
            }

            for edge in gr.out_edges(ps.vertex) {
                // Cycle check (simple paths): `to` must not be on the path.
                let revisits =
                    edge.to == init || ps.edges.iter().any(|&e| gr.edge(e).to == edge.to);
                if revisits && self.params.mode != ExplorationMode::GlobalVisited {
                    continue;
                }
                if self.params.mode == ExplorationMode::GlobalVisited && visited[edge.to.0 as usize]
                {
                    continue;
                }

                let Some(info) = view.get(edge.peer) else {
                    continue; // peer no longer in the domain
                };

                // Accumulate this path's demands on edge.peer.
                let prev_work = ps
                    .work
                    .iter()
                    .find(|(p, _)| *p == edge.peer)
                    .map_or(0.0, |&(_, w)| w);
                let prev_bw = ps
                    .bw
                    .iter()
                    .find(|(p, _)| *p == edge.peer)
                    .map_or(0, |&(_, b)| b);
                let new_work = prev_work + edge.cost.work_per_sec;
                let new_bw = prev_bw + edge.cost.bandwidth_kbps;

                // (3) CPU sustainability.
                if new_work > info.capacity - info.load + 1e-9 {
                    continue;
                }
                // (2) bandwidth, including the user's floor.
                let avail_bw = info.available_bandwidth_kbps();
                if new_bw > avail_bw || qos.min_bandwidth_kbps > avail_bw {
                    continue;
                }
                // (4) deadline: setup at currently-available speed + hop latency.
                let setup = edge.cost.setup_work / info.available_capacity();
                let est = ps.est_secs + setup + hop_latency_secs;
                if est > deadline_secs {
                    continue;
                }

                let mut child = PathState {
                    vertex: edge.to,
                    edges: Vec::with_capacity(ps.edges.len() + 1),
                    work: ps.work.clone(),
                    bw: ps.bw.clone(),
                    est_secs: est,
                };
                child.edges.extend_from_slice(&ps.edges);
                child.edges.push(edge.id);
                if let Some(w) = child.work.iter_mut().find(|(p, _)| *p == edge.peer) {
                    w.1 = new_work;
                } else {
                    child.work.push((edge.peer, new_work));
                }
                if let Some(b) = child.bw.iter_mut().find(|(p, _)| *p == edge.peer) {
                    b.1 = new_bw;
                } else {
                    child.bw.push((edge.peer, new_bw));
                }
                let priority = if matches!(self.params.mode, ExplorationMode::BestFirst) {
                    prefix_priority(&child.work)
                } else {
                    0.0
                };
                queue.push(child, priority);
            }
        }

        if candidates.is_empty() {
            return Err(AllocError::NoFeasiblePath { explored });
        }

        // Select per objective. All tiebreaks are deterministic: shorter
        // path first, then lexicographically smaller edge sequence.
        let better_tiebreak = |a: &Candidate, b: &Candidate| -> bool {
            (a.path.len(), &a.path) < (b.path.len(), &b.path)
        };
        let chosen: usize = match self.kind {
            AllocatorKind::MaxFairness => {
                let mut best = 0;
                for i in 1..candidates.len() {
                    let (a, b) = (&candidates[i], &candidates[best]);
                    if a.fairness > b.fairness + 1e-12
                        || ((a.fairness - b.fairness).abs() <= 1e-12 && better_tiebreak(a, b))
                    {
                        best = i;
                    }
                }
                best
            }
            AllocatorKind::FirstFeasible => 0,
            AllocatorKind::Random => {
                let rng = rng.expect("AllocatorKind::Random requires an RNG");
                rng.index(candidates.len())
            }
            AllocatorKind::LeastLoaded => {
                let mut best = 0;
                for i in 1..candidates.len() {
                    let (a, b) = (&candidates[i], &candidates[best]);
                    if a.max_util < b.max_util - 1e-12
                        || ((a.max_util - b.max_util).abs() <= 1e-12 && better_tiebreak(a, b))
                    {
                        best = i;
                    }
                }
                best
            }
            AllocatorKind::MinWork => {
                let mut best = 0;
                for i in 1..candidates.len() {
                    let (a, b) = (&candidates[i], &candidates[best]);
                    if a.total_work < b.total_work - 1e-12
                        || ((a.total_work - b.total_work).abs() <= 1e-12 && better_tiebreak(a, b))
                    {
                        best = i;
                    }
                }
                best
            }
        };

        let c = candidates.swap_remove(chosen);
        Ok(Allocation {
            path: c.path,
            fairness: c.fairness,
            est_response: SimDuration::from_secs_f64(c.est_secs),
            load_deltas: c.work,
            explored,
            truncated,
        })
    }
}

/// Runs the paper's default allocator (fairness argmax over all simple
/// QoS-feasible paths) — the free-function form of
/// [`FairnessAllocator::allocate`].
///
/// # Examples
///
/// ```
/// use arm_model::{allocate, MediaFormat, PeerInfo, PeerView, QosSpec, ResourceGraph};
/// use arm_util::{NodeId, SimDuration};
///
/// let (graph, _) = ResourceGraph::figure1();
/// let mut view = PeerView::new();
/// for p in 1..=5 {
///     view.upsert(NodeId::new(p), PeerInfo::idle(100.0, 10_000));
/// }
/// let init = graph.state_of(MediaFormat::paper_source()).unwrap();
/// let goal = graph.state_of(MediaFormat::paper_target()).unwrap();
/// let qos = QosSpec::with_deadline(SimDuration::from_secs(5));
/// let alloc = allocate(&graph, &view, init, &[goal], &qos).unwrap();
/// assert!(!alloc.path.is_empty());
/// assert!(alloc.fairness > 0.0 && alloc.fairness <= 1.0);
/// ```
pub fn allocate(
    gr: &ResourceGraph,
    view: &PeerView,
    init: StateId,
    goals: &[StateId],
    qos: &QosSpec,
) -> Result<Allocation, AllocError> {
    FairnessAllocator::paper().allocate(gr, view, init, goals, qos, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MediaFormat;
    use crate::peerview::PeerInfo;
    use arm_util::fairness_index;

    /// The Fig. 1 graph with a fully idle, capable domain.
    fn setup() -> (ResourceGraph, Vec<EdgeId>, PeerView, StateId, StateId) {
        let (gr, e) = ResourceGraph::figure1();
        let mut view = PeerView::new();
        for p in 1..=5u64 {
            view.upsert(NodeId::new(p), PeerInfo::idle(100.0, 10_000));
        }
        let init = gr.state_of(MediaFormat::paper_source()).unwrap();
        let goal = gr.state_of(MediaFormat::paper_target()).unwrap();
        (gr, e, view, init, goal)
    }

    fn lenient_qos() -> QosSpec {
        QosSpec::with_deadline(SimDuration::from_secs(10))
    }

    #[test]
    fn finds_the_three_paper_paths() {
        let (gr, e, view, init, goal) = setup();
        // Collect all feasible candidates by running Random across seeds —
        // instead, verify via FirstFeasible+exploration count and the known
        // path set by checking each path is feasible under MaxFairness with
        // forced tie conditions. Simplest: enumerate with a tiny helper.
        let alloc = allocate(&gr, &view, init, &[goal], &lenient_qos()).unwrap();
        // All three candidate paths are {e1,e2}, {e1,e3}, {e1,e4,e5,e8}.
        let valid = [
            vec![e[0], e[1]],
            vec![e[0], e[2]],
            vec![e[0], e[3], e[4], e[7]],
        ];
        assert!(valid.contains(&alloc.path), "got {:?}", alloc.path);
        assert!(!alloc.truncated);
        assert!(alloc.explored > 0);
    }

    #[test]
    fn idle_domain_prefers_spreading() {
        // On an idle domain the 2-hop paths load 2 peers; fairness of the
        // chosen allocation must equal the best achievable.
        let (gr, _e, view, init, goal) = setup();
        let alloc = allocate(&gr, &view, init, &[goal], &lenient_qos()).unwrap();
        // Verify the reported fairness matches a direct computation.
        let mut loads = view.loads();
        let ids: Vec<NodeId> = view.ids().collect();
        for (peer, w) in &alloc.load_deltas {
            let i = ids.iter().position(|n| n == peer).unwrap();
            loads[i] += w;
        }
        assert!((alloc.fairness - fairness_index(&loads)).abs() < 1e-12);
    }

    #[test]
    fn maxfairness_beats_or_equals_first_feasible() {
        let (gr, _e, mut view, init, goal) = setup();
        // Pre-load peer 2 so the e1,e2 path becomes unattractive.
        view.get_mut(NodeId::new(2)).unwrap().load = 80.0;
        let fair = allocate(&gr, &view, init, &[goal], &lenient_qos()).unwrap();
        let first = FairnessAllocator::with_kind(AllocatorKind::FirstFeasible)
            .allocate(&gr, &view, init, &[goal], &lenient_qos(), None)
            .unwrap();
        assert!(fair.fairness >= first.fairness - 1e-12);
        // With peer 2 at load 80, the fairest option is the 4-hop path
        // (loads 8,82,0,5,3 → F≈0.2816, beating {e1,e3}'s F≈0.2719): the
        // allocator spreads work across more peers rather than merely
        // avoiding the hot one.
        assert_eq!(fair.path.len(), 4);
    }

    #[test]
    fn deadline_prunes_long_path() {
        let (gr, e, view, init, goal) = setup();
        // Per-hop latency 20ms. The 2-hop paths estimate at 75ms
        // (20+8·0.25/100 s, 20+6·0.25/100 s); the 4-hop path at 125ms.
        // An 80ms deadline admits only the 2-hop paths.
        let qos = QosSpec::with_deadline(SimDuration::from_millis(80));
        let alloc = allocate(&gr, &view, init, &[goal], &qos).unwrap();
        assert!(alloc.path.len() == 2, "got {:?}", alloc.path);
        // And an impossible deadline yields NoFeasiblePath.
        let qos = QosSpec::with_deadline(SimDuration::from_millis(1));
        let err = allocate(&gr, &view, init, &[goal], &qos).unwrap_err();
        assert!(matches!(err, AllocError::NoFeasiblePath { .. }));
        let _ = e;
    }

    #[test]
    fn max_hops_prunes() {
        let (gr, _e, mut view, init, goal) = setup();
        // Kill the short paths but keep the long one alive: e3's host
        // (peer 3) fully loaded; e2's host (peer 2) left just enough
        // headroom for e8 (work 2) but not e2 (work 6).
        view.get_mut(NodeId::new(2)).unwrap().load = 95.0;
        view.get_mut(NodeId::new(3)).unwrap().load = 99.9;
        let qos = lenient_qos().max_hops(2);
        let err = allocate(&gr, &view, init, &[goal], &qos).unwrap_err();
        assert!(matches!(err, AllocError::NoFeasiblePath { .. }));
        // Without the cap the 4-hop path is found.
        let alloc = allocate(&gr, &view, init, &[goal], &lenient_qos()).unwrap();
        assert_eq!(alloc.path.len(), 4);
    }

    #[test]
    fn cpu_saturation_excludes_peer() {
        let (gr, e, mut view, init, goal) = setup();
        // Saturate peer 1, which hosts the mandatory first hop e1.
        view.get_mut(NodeId::new(1)).unwrap().load = 100.0;
        let err = allocate(&gr, &view, init, &[goal], &lenient_qos()).unwrap_err();
        assert!(matches!(err, AllocError::NoFeasiblePath { .. }));
        let _ = e;
    }

    #[test]
    fn bandwidth_floor_excludes_thin_peers() {
        let (gr, _e, mut view, init, goal) = setup();
        // Peer 2's link too thin for the floor; peer 3 fine.
        view.get_mut(NodeId::new(2))
            .unwrap()
            .bandwidth_capacity_kbps = 100;
        let qos = lenient_qos().min_bandwidth(320);
        let alloc = allocate(&gr, &view, init, &[goal], &qos).unwrap();
        assert!(!alloc.load_deltas.iter().any(|(p, _)| *p == NodeId::new(2)));
    }

    #[test]
    fn init_equals_goal_is_empty_path() {
        let (gr, _e, view, init, _goal) = setup();
        let alloc = allocate(&gr, &view, init, &[init], &lenient_qos()).unwrap();
        assert!(alloc.path.is_empty());
        assert_eq!(alloc.est_response, SimDuration::ZERO);
        assert_eq!(alloc.fairness, 1.0); // idle domain stays perfectly fair
    }

    #[test]
    fn multiple_goals_any_accepted() {
        let (gr, e, view, init, goal) = setup();
        let v5 = gr.edge(e[4]).to; // intermediate 128kbps state
        let alloc = allocate(&gr, &view, init, &[goal, v5], &lenient_qos()).unwrap();
        // v5 is reachable in 3 hops, goal in 2; either acceptable, and the
        // allocator scores both. The chosen path must end at one of them.
        let last = *alloc.path.last().unwrap();
        let end = gr.edge(last).to;
        assert!(end == goal || end == v5);
    }

    #[test]
    fn error_cases() {
        let (gr, _e, view, init, goal) = setup();
        assert_eq!(
            allocate(&gr, &view, init, &[], &lenient_qos()).unwrap_err(),
            AllocError::NoGoal
        );
        assert_eq!(
            allocate(&gr, &PeerView::new(), init, &[goal], &lenient_qos()).unwrap_err(),
            AllocError::EmptyDomain
        );
        assert_eq!(
            allocate(&gr, &view, StateId(99), &[goal], &lenient_qos()).unwrap_err(),
            AllocError::UnknownState
        );
    }

    #[test]
    fn global_visited_underexplores() {
        let (gr, _e, mut view, init, goal) = setup();
        view.get_mut(NodeId::new(2)).unwrap().load = 80.0;
        let all = FairnessAllocator {
            params: AllocParams::default(),
            kind: AllocatorKind::MaxFairness,
        }
        .allocate(&gr, &view, init, &[goal], &lenient_qos(), None)
        .unwrap();
        let literal = FairnessAllocator {
            params: AllocParams {
                mode: ExplorationMode::GlobalVisited,
                ..AllocParams::default()
            },
            kind: AllocatorKind::MaxFairness,
        }
        .allocate(&gr, &view, init, &[goal], &lenient_qos(), None)
        .unwrap();
        // The literal mode sees fewer candidates and can't beat the full
        // enumeration.
        assert!(literal.explored <= all.explored);
        assert!(literal.fairness <= all.fairness + 1e-12);
    }

    #[test]
    fn random_allocator_is_feasible_and_deterministic_per_seed() {
        let (gr, _e, view, init, goal) = setup();
        let alloc1 = FairnessAllocator::with_kind(AllocatorKind::Random)
            .allocate(
                &gr,
                &view,
                init,
                &[goal],
                &lenient_qos(),
                Some(&mut DetRng::new(5)),
            )
            .unwrap();
        let alloc2 = FairnessAllocator::with_kind(AllocatorKind::Random)
            .allocate(
                &gr,
                &view,
                init,
                &[goal],
                &lenient_qos(),
                Some(&mut DetRng::new(5)),
            )
            .unwrap();
        assert_eq!(alloc1.path, alloc2.path);
    }

    #[test]
    fn least_loaded_minimises_max_util() {
        let (gr, _e, mut view, init, goal) = setup();
        view.get_mut(NodeId::new(2)).unwrap().load = 50.0;
        let alloc = FairnessAllocator::with_kind(AllocatorKind::LeastLoaded)
            .allocate(&gr, &view, init, &[goal], &lenient_qos(), None)
            .unwrap();
        // Avoids peer 2 (the loaded host of e2/e8): picks {e1,e3}.
        assert!(!alloc.load_deltas.iter().any(|(p, _)| *p == NodeId::new(2)));
    }

    #[test]
    fn min_work_picks_cheapest_path() {
        let (gr, e, view, init, goal) = setup();
        let alloc = FairnessAllocator::with_kind(AllocatorKind::MinWork)
            .allocate(&gr, &view, init, &[goal], &lenient_qos(), None)
            .unwrap();
        // Total work: e1+e2 = 14, e1+e3 = 14, long path = 18. Tiebreak
        // (lexicographic) picks {e1,e2}.
        assert_eq!(alloc.path, vec![e[0], e[1]]);
    }

    #[test]
    fn truncation_flag_when_cap_hit() {
        let (gr, _e, view, init, goal) = setup();
        let alloc = FairnessAllocator {
            params: AllocParams {
                max_explored: 2,
                ..AllocParams::default()
            },
            kind: AllocatorKind::MaxFairness,
        }
        .allocate(&gr, &view, init, &[goal], &lenient_qos(), None);
        // With only 2 dequeues the search may or may not reach a goal;
        // either way it must not panic, and if it succeeds it's truncated.
        if let Ok(a) = alloc {
            assert!(a.truncated);
        }
    }

    #[test]
    fn fairness_choice_matches_exhaustive_argmax() {
        // Cross-check the argmax against scoring every valid path by hand.
        let (gr, e, mut view, init, goal) = setup();
        view.get_mut(NodeId::new(3)).unwrap().load = 30.0;
        view.get_mut(NodeId::new(5)).unwrap().load = 10.0;
        let qos = lenient_qos();
        let alloc = allocate(&gr, &view, init, &[goal], &qos).unwrap();

        let ids: Vec<NodeId> = view.ids().collect();
        let paths = [
            vec![e[0], e[1]],
            vec![e[0], e[2]],
            vec![e[0], e[3], e[4], e[7]],
        ];
        let mut best = f64::MIN;
        for p in &paths {
            let mut loads = view.loads();
            for &eid in p {
                let edge = gr.edge(eid);
                let i = ids.iter().position(|n| *n == edge.peer).unwrap();
                loads[i] += edge.cost.work_per_sec;
            }
            best = best.max(fairness_index(&loads));
        }
        assert!((alloc.fairness - best).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::media::{Codec, MediaFormat, Resolution};
    use crate::peerview::PeerInfo;
    use crate::service::ServiceCost;
    use arm_util::{fairness_index, ServiceId};
    use proptest::prelude::*;

    /// Random layered DAG: `layers` layers of up to `width` states; edges
    /// connect adjacent layers, hosted on random peers.
    fn random_graph(
        seed: u64,
        layers: usize,
        width: usize,
        peers: usize,
        edge_prob: f64,
    ) -> (ResourceGraph, PeerView, StateId, StateId) {
        let mut rng = DetRng::new(seed);
        let mut gr = ResourceGraph::new();
        let mut layer_states: Vec<Vec<StateId>> = Vec::new();
        let mut fmt_id = 0u32;
        let mut fresh_format = || {
            fmt_id += 1;
            MediaFormat::new(
                Codec::ALL[(fmt_id as usize) % Codec::ALL.len()],
                Resolution::new(100 + fmt_id as u16, 100),
                fmt_id,
            )
        };
        for li in 0..layers {
            let w = if li == 0 || li == layers - 1 {
                1
            } else {
                1 + rng.index(width)
            };
            layer_states.push((0..w).map(|_| gr.intern_state(fresh_format())).collect());
        }
        let mut svc = 0u64;
        for li in 0..layers - 1 {
            for &a in &layer_states[li] {
                for &b in &layer_states[li + 1] {
                    if rng.chance(edge_prob) || b == layer_states[li + 1][0] {
                        svc += 1;
                        gr.add_edge(
                            a,
                            b,
                            NodeId::new(rng.below(peers as u64)),
                            ServiceId::new(svc),
                            ServiceCost {
                                work_per_sec: rng.uniform(1.0, 8.0),
                                setup_work: rng.uniform(0.5, 2.0),
                                bandwidth_kbps: 64,
                            },
                        );
                    }
                }
            }
        }
        let mut view = PeerView::new();
        for p in 0..peers as u64 {
            let mut info = PeerInfo::idle(rng.uniform(50.0, 150.0), 100_000);
            info.load = rng.uniform(0.0, 40.0);
            view.upsert(NodeId::new(p), info);
        }
        (gr, view, layer_states[0][0], layer_states[layers - 1][0])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The paper's core guarantee: among all simple QoS-feasible paths,
        /// the returned one has maximal fairness. Verified against a
        /// brute-force DFS enumeration.
        #[test]
        fn maxfairness_is_argmax(seed in 0u64..500) {
            let (gr, view, init, goal) = random_graph(seed, 4, 3, 6, 0.7);
            let qos = QosSpec::with_deadline(SimDuration::from_secs(30));
            let result = allocate(&gr, &view, init, &[goal], &qos);

            // Brute force: enumerate simple paths by DFS and re-check
            // feasibility + fairness independently.
            let ids: Vec<NodeId> = view.ids().collect();
            let mut best: Option<f64> = None;
            let mut stack = vec![(init, Vec::<EdgeId>::new())];
            while let Some((v, path)) = stack.pop() {
                if v == goal {
                    // feasibility: accumulate per-peer work/bw
                    let mut work: Vec<(NodeId, f64)> = Vec::new();
                    let mut est = 0.0;
                    let mut feasible = true;
                    for &eid in &path {
                        let e = gr.edge(eid);
                        let info = view.get(e.peer).unwrap();
                        let w = work.iter_mut().find(|(p, _)| *p == e.peer);
                        match w {
                            Some(entry) => entry.1 += e.cost.work_per_sec,
                            None => work.push((e.peer, e.cost.work_per_sec)),
                        }
                        let acc = work.iter().find(|(p, _)| *p == e.peer).unwrap().1;
                        if acc > info.capacity - info.load + 1e-9 {
                            feasible = false;
                            break;
                        }
                        est += e.cost.setup_work / info.available_capacity() + 0.020;
                        if est > qos.deadline.as_secs_f64() {
                            feasible = false;
                            break;
                        }
                    }
                    if feasible {
                        let mut loads = view.loads();
                        for (p, w) in &work {
                            let i = ids.iter().position(|n| n == p).unwrap();
                            loads[i] += w;
                        }
                        let f = fairness_index(&loads);
                        best = Some(best.map_or(f, |b: f64| b.max(f)));
                    }
                    continue;
                }
                for e in gr.out_edges(v) {
                    let revisit = e.to == init
                        || path.iter().any(|&pe| gr.edge(pe).to == e.to);
                    if revisit {
                        continue;
                    }
                    let mut np = path.clone();
                    np.push(e.id);
                    stack.push((e.to, np));
                }
            }

            match (result, best) {
                (Ok(a), Some(b)) => prop_assert!((a.fairness - b).abs() < 1e-9,
                    "allocator {} vs brute force {}", a.fairness, b),
                (Err(AllocError::NoFeasiblePath{..}), None) => {}
                (r, b) => prop_assert!(false, "disagree: {r:?} vs brute {b:?}"),
            }
        }

        /// Allocation never violates the CPU sustainability invariant.
        #[test]
        fn allocation_respects_capacity(seed in 0u64..500) {
            let (gr, view, init, goal) = random_graph(seed, 5, 3, 4, 0.6);
            let qos = QosSpec::with_deadline(SimDuration::from_secs(30));
            if let Ok(a) = allocate(&gr, &view, init, &[goal], &qos) {
                for (peer, w) in &a.load_deltas {
                    let info = view.get(*peer).unwrap();
                    prop_assert!(info.load + w <= info.capacity + 1e-6);
                }
                // And the path is connected init -> goal.
                let mut v = init;
                for &eid in &a.path {
                    let e = gr.edge(eid);
                    prop_assert_eq!(e.from, v);
                    v = e.to;
                }
                prop_assert_eq!(v, goal);
            }
        }
    }
}

#[cfg(test)]
mod bestfirst_tests {
    use super::*;
    use crate::media::MediaFormat;
    use crate::peerview::PeerInfo;

    fn setup() -> (ResourceGraph, PeerView, StateId, StateId, QosSpec) {
        let (gr, _) = ResourceGraph::figure1();
        let mut view = PeerView::new();
        for p in 1..=5u64 {
            view.upsert(NodeId::new(p), PeerInfo::idle(100.0, 10_000));
        }
        let init = gr.state_of(MediaFormat::paper_source()).unwrap();
        let goal = gr.state_of(MediaFormat::paper_target()).unwrap();
        (
            gr,
            view,
            init,
            goal,
            QosSpec::with_deadline(SimDuration::from_secs(10)),
        )
    }

    fn with_mode(mode: ExplorationMode, cap: usize) -> FairnessAllocator {
        FairnessAllocator {
            params: AllocParams {
                mode,
                max_explored: cap,
                ..AllocParams::default()
            },
            kind: AllocatorKind::MaxFairness,
        }
    }

    #[test]
    fn bestfirst_matches_full_enumeration_uncapped() {
        let (gr, view, init, goal, qos) = setup();
        let full = with_mode(ExplorationMode::AllSimplePaths, 200_000)
            .allocate(&gr, &view, init, &[goal], &qos, None)
            .unwrap();
        let best = with_mode(ExplorationMode::BestFirst, 200_000)
            .allocate(&gr, &view, init, &[goal], &qos, None)
            .unwrap();
        // Same path space explored exhaustively ⇒ same optimum.
        assert!((full.fairness - best.fairness).abs() < 1e-12);
        assert_eq!(full.path, best.path);
    }

    #[test]
    fn bestfirst_beats_truncated_bfs_on_dense_graphs() {
        // A dense layered graph where a tight cap truncates BFS before it
        // reaches the well-balanced deep paths.
        use crate::media::{Codec, Resolution};
        use crate::service::ServiceCost;
        use arm_util::ServiceId;
        let mut rng = DetRng::new(3);
        let mut gr = ResourceGraph::new();
        let mut fmt = 0u32;
        let mut fresh = |gr: &mut ResourceGraph| {
            fmt += 1;
            gr.intern_state(MediaFormat::new(
                Codec::ALL[fmt as usize % Codec::ALL.len()],
                Resolution::new(100 + fmt as u16, 100),
                fmt,
            ))
        };
        let layers = 5usize;
        let width = 6usize;
        let mut layer_states = Vec::new();
        for li in 0..layers {
            let w = if li == 0 || li == layers - 1 {
                1
            } else {
                width
            };
            layer_states.push((0..w).map(|_| fresh(&mut gr)).collect::<Vec<_>>());
        }
        let mut svc = 0u64;
        for li in 0..layers - 1 {
            for &a in &layer_states[li] {
                for &b in &layer_states[li + 1] {
                    svc += 1;
                    gr.add_edge(
                        a,
                        b,
                        NodeId::new(rng.below(24)),
                        ServiceId::new(svc),
                        ServiceCost {
                            work_per_sec: rng.uniform(1.0, 8.0),
                            setup_work: 0.5,
                            bandwidth_kbps: 64,
                        },
                    );
                }
            }
        }
        let mut view = PeerView::new();
        for p in 0..24u64 {
            let mut info = PeerInfo::idle(100.0, 1_000_000);
            info.load = rng.uniform(0.0, 40.0);
            view.upsert(NodeId::new(p), info);
        }
        let init = layer_states[0][0];
        let goal = layer_states[layers - 1][0];
        let qos = QosSpec::with_deadline(SimDuration::from_secs(60));

        // Average over several randomised load refreshes.
        let mut wins = 0;
        let mut ties = 0;
        let trials = 10;
        for t in 0..trials {
            let mut v = view.clone();
            let mut r2 = DetRng::new(100 + t);
            let ids: Vec<NodeId> = v.ids().collect();
            for id in ids {
                v.get_mut(id).unwrap().load = r2.uniform(0.0, 50.0);
            }
            let cap = 60; // far below the full path count
            let bfs = with_mode(ExplorationMode::AllSimplePaths, cap).allocate(
                &gr,
                &v,
                init,
                &[goal],
                &qos,
                None,
            );
            let best = with_mode(ExplorationMode::BestFirst, cap).allocate(
                &gr,
                &v,
                init,
                &[goal],
                &qos,
                None,
            );
            match (bfs, best) {
                (Ok(b), Ok(bf)) => {
                    if bf.fairness > b.fairness + 1e-12 {
                        wins += 1;
                    } else if (bf.fairness - b.fairness).abs() <= 1e-12 {
                        ties += 1;
                    }
                }
                (Err(_), Ok(_)) => wins += 1,
                _ => {}
            }
        }
        assert!(
            wins + ties >= trials * 7 / 10,
            "best-first should match or beat truncated BFS most of the time: \
             {wins} wins, {ties} ties of {trials}"
        );
        assert!(wins >= 1, "and strictly win at least once ({wins})");
    }

    #[test]
    fn bestfirst_is_deterministic() {
        let (gr, view, init, goal, qos) = setup();
        let a = with_mode(ExplorationMode::BestFirst, 50)
            .allocate(&gr, &view, init, &[goal], &qos, None)
            .unwrap();
        let b = with_mode(ExplorationMode::BestFirst, 50)
            .allocate(&gr, &view, init, &[goal], &qos, None)
            .unwrap();
        assert_eq!(a.path, b.path);
    }
}
