//! The task-allocation algorithm (paper §4.3, Fig. 3) and baselines.
//!
//! The Resource Manager "uses the Breadth-First-Search (BFS) algorithm to
//! search for services (edges) connecting the initial and final requested
//! application states, prunes the possible solutions using the requested
//! QoS requirements `q` … among the allocations that satisfy the QoS
//! requirements, the algorithm returns the one that results to the maximum
//! fairness of the load distribution among the peers."
//!
//! This module implements that algorithm as a pure function over the
//! resource graph and the RM's peer view, plus:
//!
//! * an [`ExplorationMode`] knob: [`ExplorationMode::AllSimplePaths`]
//!   (default) enumerates every cycle-free path with QoS pruning, which is
//!   what maximising fairness *requires*; [`ExplorationMode::GlobalVisited`]
//!   is the literal reading of the Fig. 3 pseudocode, where a global
//!   visited set lets only the first BFS path reach each vertex — it
//!   under-explores and is kept as an ablation (experiment E3 compares
//!   them);
//! * the baseline allocators used in the evaluation
//!   ([`AllocatorKind::FirstFeasible`], [`AllocatorKind::Random`],
//!   [`AllocatorKind::LeastLoaded`], [`AllocatorKind::MinWork`]).
//!
//! # QoS feasibility of a path
//!
//! A candidate path `e_1 … e_k` is feasible for requirement set `q` iff
//!
//! 1. `k ≤ q.max_hops` (if bounded);
//! 2. for every peer `p` on the path, `p`'s available bandwidth covers the
//!    accumulated bandwidth cost of the path's hops on `p`, and — if
//!    `q.min_bandwidth_kbps` is set — also that floor;
//! 3. for every peer `p`, `p`'s available processing capacity covers the
//!    accumulated sustained work of the path's hops on `p` (the session
//!    must be sustainable);
//! 4. the estimated response time — per-hop setup computation at the
//!    peer's *currently available* speed plus a per-hop communication
//!    latency — fits within `q.deadline` ("it calculates which paths
//!    satisfy the deadline by utilizing the current load information").

use crate::peerview::{PeerInfo, PeerView};
use crate::qos::QosSpec;
use crate::resource_graph::{EdgeId, ResourceGraph, StateId};
use arm_util::{fairness_upper_bound, DetRng, FairnessTracker, NodeId, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// How the path space is explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExplorationMode {
    /// Enumerate all simple (cycle-free) paths, pruning by QoS. Required
    /// for a true fairness argmax. Default.
    #[default]
    AllSimplePaths,
    /// Literal Fig. 3 pseudocode: a global visited set — each vertex is
    /// expanded at most once, so only the first BFS path to the goal is
    /// scored. Cheaper, but under-explores. Kept as an ablation.
    GlobalVisited,
    /// Greedy best-first: the frontier is ordered by the fairness of the
    /// path prefix, so high-fairness completions surface early. With the
    /// same `max_explored` cap this is the right mode for *dense* graphs
    /// (e.g. 64-peer domains, see experiment E14), where full enumeration
    /// truncates before finding good paths. Explores the same simple-path
    /// space as [`ExplorationMode::AllSimplePaths`]; only the order (and
    /// hence what a truncated search sees) differs.
    BestFirst,
    /// Branch-and-bound: the frontier is ordered by an *admissible*
    /// fairness upper bound (the best Jain index any completion of the
    /// prefix could reach, via [`arm_util::fairness_upper_bound`]), and
    /// prefixes whose bound cannot beat the incumbent candidate — or from
    /// which no goal is reachable within the remaining hop budget — are
    /// pruned. Duplicate prefixes with identical load effect at the same
    /// `(vertex, visited-set)` are collapsed (dominance). Answer-identical
    /// to [`ExplorationMode::AllSimplePaths`] for
    /// [`AllocatorKind::MaxFairness`] (same chosen path, fairness and
    /// estimate, bit for bit — see the property tests); other objectives
    /// need the full candidate set and silently fall back to exhaustive
    /// enumeration.
    BranchAndBound,
}

/// Which objective picks among feasible paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AllocatorKind {
    /// The paper's algorithm: maximise Jain's fairness index of the
    /// post-allocation load distribution.
    #[default]
    MaxFairness,
    /// First feasible path in BFS order (shortest-ish, load-agnostic).
    FirstFeasible,
    /// Uniformly random feasible path (needs an RNG).
    Random,
    /// Minimise the resulting maximum peer utilization (classic
    /// least-loaded / min-makespan greedy).
    LeastLoaded,
    /// Minimise total sustained work of the path (efficiency-greedy,
    /// ignores balance).
    MinWork,
}

/// Tuning parameters of the search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocParams {
    /// Estimated one-hop communication latency used in deadline pruning.
    pub hop_latency: SimDuration,
    /// Cap on the number of paths dequeued before the search gives up
    /// enumerating (guards against exponential blowup on dense graphs).
    /// The result is flagged `truncated` when the cap is hit.
    pub max_explored: usize,
    /// Path-space exploration mode.
    pub mode: ExplorationMode,
}

impl Default for AllocParams {
    fn default() -> Self {
        Self {
            hop_latency: SimDuration::from_millis(20),
            max_explored: 200_000,
            mode: ExplorationMode::AllSimplePaths,
        }
    }
}

/// Search-efficiency counters for one allocation run. Cheap to produce in
/// all modes; the pruning counters are only non-zero under
/// [`ExplorationMode::BranchAndBound`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocStats {
    /// Prefixes dequeued and expanded (or scored) by the search.
    pub explored_prefixes: u64,
    /// Prefixes discarded because their admissible fairness upper bound
    /// could not beat the incumbent candidate, including prefixes from
    /// which no goal is reachable within the remaining hop budget.
    pub pruned_bound: u64,
    /// Prefixes collapsed as duplicates of an equivalent-or-better
    /// already-enqueued prefix (same vertex, visited set and load effect).
    pub pruned_dominated: u64,
}

impl AllocStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &AllocStats) {
        self.explored_prefixes += other.explored_prefixes;
        self.pruned_bound += other.pruned_bound;
        self.pruned_dominated += other.pruned_dominated;
    }
}

/// A successful allocation: the chosen path and its predicted effects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// The chosen resource-graph path (empty = the initial state already
    /// satisfies the request; a direct fetch).
    pub path: Vec<EdgeId>,
    /// Jain's fairness index of the domain load distribution *after*
    /// committing this path (`f_max` of Fig. 3).
    pub fairness: f64,
    /// Estimated response time (setup) of the path.
    pub est_response: SimDuration,
    /// Sustained work the path adds to each involved peer.
    pub load_deltas: Vec<(NodeId, f64)>,
    /// Number of candidate paths dequeued during the search.
    pub explored: usize,
    /// True if the exploration cap was hit (the argmax may be approximate).
    pub truncated: bool,
    /// Search-efficiency counters (explored/pruned prefix counts).
    pub stats: AllocStats,
}

/// Why allocation failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// The initial or goal state is not in the resource graph.
    UnknownState,
    /// No goal states were supplied.
    NoGoal,
    /// The domain has no peers.
    EmptyDomain,
    /// Paths exist but none satisfies the QoS requirements
    /// ("if no allocation that satisfies the given QoS exists, the
    /// algorithm reports that").
    NoFeasiblePath {
        /// How many candidate paths were examined.
        explored: usize,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::UnknownState => write!(f, "initial or goal state not in resource graph"),
            AllocError::NoGoal => write!(f, "no goal states supplied"),
            AllocError::EmptyDomain => write!(f, "domain has no peers"),
            AllocError::NoFeasiblePath { explored } => {
                write!(f, "no QoS-feasible path (explored {explored} candidates)")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// The allocator: parameters + objective.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FairnessAllocator {
    /// Search tuning.
    pub params: AllocParams,
    /// Selection objective.
    pub kind: AllocatorKind,
}

/// Sentinel index: "no parent" / "peer not in the domain view".
const NONE_IDX: u32 = u32::MAX;

/// Branch-and-bound pruning margin, in fairness units. The upper bound is
/// admissible over the reals; this margin absorbs floating-point slop in
/// both the bound and the candidate scores, so pruning can never discard a
/// candidate that exact selection would have chosen (DESIGN.md §10).
const PRUNE_MARGIN: f64 = 1e-9;

/// Cap on remembered prefixes per `(vertex, visited)` dominance key.
const DOM_CAP: usize = 8;

/// One node of the search's parent-pointer prefix tree. A prefix is the
/// edge chain from a node back to the root; each node stores the
/// accumulated (work, bandwidth) for *its own hop's peer*, so extending a
/// prefix is O(1) — nothing is cloned per enqueued child (the previous
/// implementation cloned three `Vec`s per child).
#[derive(Debug, Clone, Copy)]
struct PathNode {
    /// Arena index of the parent prefix; `NONE_IDX` on the root.
    parent: u32,
    /// The edge taken into this node (meaningless on the root).
    edge: EdgeId,
    /// Vertex this prefix ends at.
    vertex: StateId,
    /// Peer index (into the domain's sorted id list) of the edge's host;
    /// `NONE_IDX` on the root.
    peer_idx: u32,
    /// This path's accumulated work on that peer, including `edge`.
    work: f64,
    /// This path's accumulated bandwidth on that peer, kbps.
    bw: u32,
    /// Hop count.
    len: u32,
    /// Estimated response time so far, in seconds.
    est_secs: f64,
    /// Bitmap of visited vertices when the graph has ≤ 128 states
    /// (otherwise 0, and cycle checks walk the chain instead).
    visited: u128,
}

/// True when `v` already lies on the prefix ending at `node`.
fn on_path(arena: &[PathNode], mut node: u32, v: StateId) -> bool {
    while node != NONE_IDX {
        let Some(n) = arena.get(node as usize) else {
            return false;
        };
        if n.vertex == v {
            return true;
        }
        node = n.parent;
    }
    false
}

/// The prefix's accumulated (work, bandwidth) on `peer_idx`: the deepest
/// chain node for that peer already holds the path total.
fn accum_for_peer(arena: &[PathNode], mut node: u32, peer_idx: u32) -> (f64, u32) {
    while node != NONE_IDX {
        let Some(n) = arena.get(node as usize) else {
            break;
        };
        if n.parent == NONE_IDX {
            break; // root carries no hop
        }
        if n.peer_idx == peer_idx {
            return (n.work, n.bw);
        }
        node = n.parent;
    }
    (0.0, 0)
}

/// Materialises per-peer `(peer index, accumulated work, accumulated bw)`
/// triples in first-encounter order from the path start. This reproduces
/// exactly the order and arithmetic of accumulating hop by hop, so
/// fairness evaluations over the result are bit-identical to the old
/// per-child vector representation.
fn collect_profile(
    arena: &[PathNode],
    node: u32,
    chain: &mut Vec<u32>,
    out: &mut Vec<(usize, f64, u32)>,
) {
    chain.clear();
    out.clear();
    let mut cur = node;
    while cur != NONE_IDX {
        let Some(n) = arena.get(cur as usize) else {
            break;
        };
        if n.parent != NONE_IDX {
            chain.push(cur);
        }
        cur = n.parent;
    }
    for &ni in chain.iter().rev() {
        let Some(n) = arena.get(ni as usize) else {
            continue;
        };
        let pi = n.peer_idx as usize;
        if let Some(slot) = out.iter_mut().find(|(i, _, _)| *i == pi) {
            // A deeper node for the same peer carries the newer total.
            slot.1 = n.work;
            slot.2 = n.bw;
        } else {
            out.push((pi, n.work, n.bw));
        }
    }
}

/// Materialises the edge sequence of the prefix ending at `node`.
fn collect_path(arena: &[PathNode], node: u32, chain: &mut Vec<u32>) -> Vec<EdgeId> {
    chain.clear();
    let mut cur = node;
    while cur != NONE_IDX {
        let Some(n) = arena.get(cur as usize) else {
            break;
        };
        if n.parent != NONE_IDX {
            chain.push(cur);
        }
        cur = n.parent;
    }
    chain
        .iter()
        .rev()
        .filter_map(|&i| arena.get(i as usize).map(|n| n.edge))
        .collect()
}

/// Extends a materialised profile by one hop (same arithmetic as
/// [`accum_for_peer`] + the per-edge accumulation in the search loop).
fn apply_hop(profile: &mut Vec<(usize, f64, u32)>, pi: usize, work: f64, bw: u32) {
    if let Some(slot) = profile.iter_mut().find(|(i, _, _)| *i == pi) {
        slot.1 = work;
        slot.2 = bw;
    } else {
        profile.push((pi, work, bw));
    }
}

/// `path(a) ≤ path(parent(b) + edge(b))` lexicographically — the
/// tiebreak order used by candidate selection.
fn path_lex_le(
    arena: &[PathNode],
    a: u32,
    b_parent: u32,
    b_edge: EdgeId,
    chain: &mut Vec<u32>,
) -> bool {
    let pa = collect_path(arena, a, chain);
    let mut pb = collect_path(arena, b_parent, chain);
    pb.push(b_edge);
    pa <= pb
}

/// Dominance test: may the prospective child be dropped because an
/// already-enqueued prefix at the same `(vertex, visited-set)` key has a
/// *bit-identical* per-peer work profile, pointwise-≤ bandwidth use, ≤
/// estimate, and a tiebreak-preferred edge sequence? Any completion of the
/// child is then also a completion of the stored prefix with the same
/// fairness, no worse feasibility, and a selection-preferred path — so
/// dropping the child can never change the chosen allocation.
fn is_dominated(
    arena: &[PathNode],
    entries: &[u32],
    child: &PathNode,
    child_profile: &[(usize, f64, u32)],
    chain: &mut Vec<u32>,
    profile2: &mut Vec<(usize, f64, u32)>,
) -> bool {
    'entries: for &si in entries {
        let Some(s) = arena.get(si as usize) else {
            continue;
        };
        if s.est_secs > child.est_secs {
            continue;
        }
        collect_profile(arena, si, chain, profile2);
        if profile2.len() != child_profile.len() {
            continue;
        }
        for &(i, w, b) in profile2.iter() {
            let Some(&(_, cw, cb)) = child_profile.iter().find(|&&(ci, _, _)| ci == i) else {
                continue 'entries;
            };
            if w.to_bits() != cw.to_bits() || b > cb {
                continue 'entries;
            }
        }
        if path_lex_le(arena, si, child.parent, child.edge, chain) {
            return true;
        }
    }
    false
}

/// Precomputed branch-and-bound state: per-(hops, vertex) remaining-work
/// budgets and the sorted base loads feeding the water-filling bound.
struct BnbCtx {
    /// `reach[h][v]`: maximum total work of any ≤`h`-hop walk from `v` to
    /// a goal (revisits allowed — a relaxation, so the budget is never an
    /// underestimate); `-∞` when no goal is reachable in `h` hops.
    reach: Vec<Vec<f64>>,
    /// Total-hop cap: `min(num_states − 1, max_hops, ⌊deadline/hop⌋ + 1)`.
    h_cap: usize,
    num_states: usize,
    /// Base loads ascending, paired with their peer index.
    sorted_base: Vec<(f64, u32)>,
    // Reusable scratch, so per-prefix bound evaluation allocates nothing.
    merged: Vec<f64>,
    news: Vec<f64>,
    marked: Vec<bool>,
}

impl BnbCtx {
    fn new(
        gr: &ResourceGraph,
        goals: &[StateId],
        qos: &QosSpec,
        deadline_secs: f64,
        hop_latency_secs: f64,
        loads: &[f64],
    ) -> Self {
        let num_states = gr.num_states();
        // A simple path visits each vertex at most once.
        let mut h_cap = num_states.saturating_sub(1);
        if let Some(mh) = qos.max_hops {
            h_cap = h_cap.min(mh);
        }
        if hop_latency_secs > 0.0 {
            // Every hop costs at least the hop latency; the +1 forgives
            // floating-point edge cases (a loose cap stays admissible).
            h_cap = h_cap.min((deadline_secs / hop_latency_secs) as usize + 1);
        }
        let mut row = vec![f64::NEG_INFINITY; num_states];
        for g in goals {
            if let Some(slot) = row.get_mut(g.0 as usize) {
                *slot = 0.0;
            }
        }
        let mut reach = vec![row];
        for _ in 1..=h_cap {
            let prev = reach.last().cloned().unwrap_or_default();
            let mut row = prev.clone();
            for (v, slot) in row.iter_mut().enumerate() {
                for e in gr.out_edges(StateId(v as u32)) {
                    let r = prev
                        .get(e.to.0 as usize)
                        .copied()
                        .unwrap_or(f64::NEG_INFINITY);
                    if r > f64::NEG_INFINITY {
                        let cand = e.cost.work_per_sec + r;
                        if cand > *slot {
                            *slot = cand;
                        }
                    }
                }
            }
            reach.push(row);
        }
        let mut sorted_base: Vec<(f64, u32)> = loads
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as u32))
            .collect();
        sorted_base.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Self {
            reach,
            h_cap,
            num_states,
            sorted_base,
            merged: Vec::with_capacity(loads.len()),
            news: Vec::new(),
            marked: vec![false; loads.len()],
        }
    }

    /// Admissible fairness upper bound for a prefix at `vertex` with `len`
    /// hops used, estimate `est_secs`, and the per-peer load deltas in
    /// `profile`. Returns `NEG_INFINITY` when no completion exists at all
    /// (no goal reachable within the remaining hop budget).
    // lint: the bound needs the full pruning context (deadline, latency,
    // prefix profile); bundling into a struct would just rename the args.
    #[allow(clippy::too_many_arguments)]
    fn upper_bound(
        &mut self,
        tracker: &FairnessTracker,
        vertex: StateId,
        len: u32,
        est_secs: f64,
        deadline_secs: f64,
        hop_latency_secs: f64,
        profile: &[(usize, f64, u32)],
    ) -> f64 {
        // Remaining-hop budget: global cap minus hops used, the
        // simple-path limit on fresh vertices, and the latency the
        // remaining deadline can still absorb.
        let mut h_rem = self.h_cap.saturating_sub(len as usize);
        h_rem = h_rem.min(self.num_states.saturating_sub(len as usize + 1));
        if hop_latency_secs > 0.0 {
            let slack = (deadline_secs - est_secs).max(0.0);
            h_rem = h_rem.min((slack / hop_latency_secs) as usize + 1);
        }
        let budget = self
            .reach
            .get(h_rem)
            .and_then(|row| row.get(vertex.0 as usize))
            .copied()
            .unwrap_or(f64::NEG_INFINITY);
        if budget == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        // Fold the prefix deltas into the tracked Σl / Σl² …
        let loads = tracker.loads();
        let mut sum = tracker.total();
        let mut sum_sq = tracker.total_sq();
        self.news.clear();
        for &(i, w, _) in profile {
            let old = loads.get(i).copied().unwrap_or(0.0);
            let new = old + w;
            sum += new - old;
            sum_sq += new * new - old * old;
            self.news.push(new);
            if let Some(m) = self.marked.get_mut(i) {
                *m = true;
            }
        }
        // … and splice the changed loads into the presorted base order
        // (O(n + k log k) instead of re-sorting n loads per prefix).
        self.news.sort_by(|a, b| a.total_cmp(b));
        self.merged.clear();
        let mut next_new = 0usize;
        for &(v, pi) in &self.sorted_base {
            if self.marked.get(pi as usize).copied().unwrap_or(false) {
                continue; // superseded by its updated value
            }
            while let Some(&nv) = self.news.get(next_new) {
                if nv <= v {
                    self.merged.push(nv);
                    next_new += 1;
                } else {
                    break;
                }
            }
            self.merged.push(v);
        }
        while let Some(&nv) = self.news.get(next_new) {
            self.merged.push(nv);
            next_new += 1;
        }
        for &(i, _, _) in profile {
            if let Some(m) = self.marked.get_mut(i) {
                *m = false;
            }
        }
        fairness_upper_bound(&self.merged, sum, sum_sq, budget)
    }
}

/// A frontier entry for the heap-ordered exploration modes.
struct BestEntry {
    priority: f64,
    seq: u64,
    node: u32,
}
impl PartialEq for BestEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority.to_bits() == other.priority.to_bits() && self.seq == other.seq
    }
}
impl Eq for BestEntry {}
impl PartialOrd for BestEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for BestEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on priority; FIFO (lower seq first) among ties
        // for determinism. `total_cmp` is a total order, so NaN
        // priorities (which should never occur) sort low instead
        // of panicking.
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The search frontier: FIFO for (literal) BFS modes, a max-heap keyed by
/// prefix fairness (BestFirst) or by the admissible fairness upper bound
/// (BranchAndBound). Entries are arena indices.
enum Frontier {
    Fifo(VecDeque<u32>),
    Best(std::collections::BinaryHeap<BestEntry>, u64),
}
impl Frontier {
    fn pop(&mut self) -> Option<(u32, f64)> {
        match self {
            Frontier::Fifo(q) => q.pop_front().map(|n| (n, 0.0)),
            Frontier::Best(h, _) => h.pop().map(|e| (e.node, e.priority)),
        }
    }
    fn push(&mut self, node: u32, priority: f64) {
        match self {
            Frontier::Fifo(q) => q.push_back(node),
            Frontier::Best(h, seq) => {
                *seq += 1;
                h.push(BestEntry {
                    priority,
                    seq: *seq,
                    node,
                });
            }
        }
    }
}

/// A scored path that reached a goal, in candidate-discovery order.
struct Candidate {
    path: Vec<EdgeId>,
    fairness: f64,
    est_secs: f64,
    work: Vec<(NodeId, f64)>,
    max_util: f64,
    total_work: f64,
}

/// Applies the per-objective selection rule to the candidate set and
/// builds the final [`Allocation`]. All tiebreaks are deterministic:
/// shorter path first, then lexicographically smaller edge sequence.
/// Shared verbatim between the live search and the cached-path replay, so
/// the two can never drift apart.
fn select_candidate(
    kind: AllocatorKind,
    rng: Option<&mut DetRng>,
    mut candidates: Vec<Candidate>,
    explored: usize,
    truncated: bool,
    mut stats: AllocStats,
) -> Result<Allocation, AllocError> {
    if candidates.is_empty() {
        return Err(AllocError::NoFeasiblePath { explored });
    }
    let better_tiebreak = |a: &Candidate, b: &Candidate| -> bool {
        (a.path.len(), &a.path) < (b.path.len(), &b.path)
    };
    let chosen: usize = match kind {
        AllocatorKind::MaxFairness => {
            // Exact comparison (not epsilon-fuzzed): `total_cmp` is a
            // total order, so the winner is independent of candidate
            // discovery order — which is what lets BranchAndBound prune
            // the frontier without ever changing the answer.
            let mut best = 0;
            for i in 1..candidates.len() {
                let (a, b) = (&candidates[i], &candidates[best]);
                match a.fairness.total_cmp(&b.fairness) {
                    std::cmp::Ordering::Greater => best = i,
                    std::cmp::Ordering::Equal if better_tiebreak(a, b) => best = i,
                    _ => {}
                }
            }
            best
        }
        AllocatorKind::FirstFeasible => 0,
        AllocatorKind::Random => match rng {
            Some(rng) => rng.index(candidates.len()),
            // Graceful deterministic fallback instead of panicking:
            // without an RNG, "random" degrades to first-feasible.
            None => 0,
        },
        AllocatorKind::LeastLoaded => {
            let mut best = 0;
            for i in 1..candidates.len() {
                let (a, b) = (&candidates[i], &candidates[best]);
                if a.max_util < b.max_util - 1e-12
                    || ((a.max_util - b.max_util).abs() <= 1e-12 && better_tiebreak(a, b))
                {
                    best = i;
                }
            }
            best
        }
        AllocatorKind::MinWork => {
            let mut best = 0;
            for i in 1..candidates.len() {
                let (a, b) = (&candidates[i], &candidates[best]);
                if a.total_work < b.total_work - 1e-12
                    || ((a.total_work - b.total_work).abs() <= 1e-12 && better_tiebreak(a, b))
                {
                    best = i;
                }
            }
            best
        }
    };

    stats.explored_prefixes = explored as u64;
    let c = candidates.swap_remove(chosen);
    Ok(Allocation {
        path: c.path,
        fairness: c.fairness,
        est_response: SimDuration::from_secs_f64(c.est_secs),
        load_deltas: c.work,
        explored,
        truncated,
        stats,
    })
}

impl FairnessAllocator {
    /// Creates the paper's default allocator.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Creates an allocator with a specific objective.
    pub fn with_kind(kind: AllocatorKind) -> Self {
        Self {
            kind,
            ..Self::default()
        }
    }

    /// Runs the allocation algorithm.
    ///
    /// `rng` is only consulted by [`AllocatorKind::Random`]; pass `None`
    /// otherwise. See the module docs for the feasibility rules.
    pub fn allocate(
        &self,
        gr: &ResourceGraph,
        view: &PeerView,
        init: StateId,
        goals: &[StateId],
        qos: &QosSpec,
        rng: Option<&mut DetRng>,
    ) -> Result<Allocation, AllocError> {
        if goals.is_empty() {
            return Err(AllocError::NoGoal);
        }
        if view.is_empty() {
            return Err(AllocError::EmptyDomain);
        }
        if init.0 as usize >= gr.num_states()
            || goals.iter().any(|g| g.0 as usize >= gr.num_states())
        {
            return Err(AllocError::UnknownState);
        }

        // Branch-and-bound prunes against the *fairness* objective, so it
        // is only answer-preserving for MaxFairness; every other objective
        // needs the full candidate set and falls back to exhaustive
        // enumeration.
        let mode = if self.params.mode == ExplorationMode::BranchAndBound
            && self.kind != AllocatorKind::MaxFairness
        {
            ExplorationMode::AllSimplePaths
        } else {
            self.params.mode
        };

        // Node order for the fairness tracker (PeerView iterates sorted),
        // plus a dense copy of the per-peer info so the hot loop never
        // touches the BTreeMap.
        let (ids, infos): (Vec<NodeId>, Vec<PeerInfo>) =
            view.iter().map(|(n, i)| (*n, i.clone())).unzip();
        let tracker = FairnessTracker::from_loads(view.loads());

        // Peer lookup table indexed by raw edge id: one binary search per
        // edge *once per call*, instead of one per expansion.
        let mut edge_peer = vec![NONE_IDX; gr.edge_capacity()];
        for edge in gr.edges() {
            if let Some(slot) = edge_peer.get_mut(edge.id.0 as usize) {
                *slot = match ids.binary_search(&edge.peer) {
                    Ok(i) => i as u32,
                    Err(_) => NONE_IDX,
                };
            }
        }

        let deadline_secs = qos.deadline.as_secs_f64();
        let hop_latency_secs = self.params.hop_latency.as_secs_f64();

        let num_states = gr.num_states();
        // The visited bitmap only fits graphs with ≤ 128 states; beyond
        // that, cycle checks walk the parent chain and dominance is off.
        let use_bitmap = num_states <= 128;
        let mut goal_mask = 0u128;
        if use_bitmap {
            for g in goals {
                goal_mask |= 1u128 << g.0;
            }
        }
        let is_goal =
            |v: StateId| -> bool { use_bitmap && goal_mask >> v.0 & 1 == 1 || goals.contains(&v) };

        let mut bnb = if mode == ExplorationMode::BranchAndBound {
            Some(BnbCtx::new(
                gr,
                goals,
                qos,
                deadline_secs,
                hop_latency_secs,
                tracker.loads(),
            ))
        } else {
            None
        };
        let mut incumbent = f64::NEG_INFINITY;
        let mut stats = AllocStats::default();
        // Dominance table (BranchAndBound + bitmap only): prefixes already
        // enqueued at each `(vertex, visited-set)` key.
        let mut dom: BTreeMap<(u32, u128), Vec<u32>> = BTreeMap::new();

        // Parent-pointer arena of search prefixes and reusable scratch.
        let mut arena: Vec<PathNode> = Vec::with_capacity(256);
        let mut chain: Vec<u32> = Vec::new();
        let mut profile: Vec<(usize, f64, u32)> = Vec::new();
        let mut profile2: Vec<(usize, f64, u32)> = Vec::new();
        let mut deltas: Vec<(usize, f64)> = Vec::new();

        let mut candidates: Vec<Candidate> = Vec::new();
        let mut explored = 0usize;
        let mut truncated = false;

        let mut queue = match mode {
            ExplorationMode::BestFirst | ExplorationMode::BranchAndBound => {
                Frontier::Best(std::collections::BinaryHeap::new(), 0)
            }
            _ => Frontier::Fifo(VecDeque::new()),
        };
        arena.push(PathNode {
            parent: NONE_IDX,
            edge: EdgeId(0),
            vertex: init,
            peer_idx: NONE_IDX,
            work: 0.0,
            bw: 0,
            len: 0,
            est_secs: 0.0,
            visited: if use_bitmap { 1u128 << init.0 } else { 0 },
        });
        queue.push(0, 1.0);
        let mut visited_global = vec![false; num_states]; // GlobalVisited mode only

        while let Some((ni, prio)) = queue.pop() {
            if explored >= self.params.max_explored {
                truncated = true;
                break;
            }
            // Re-check against the incumbent at dequeue: the bound was
            // computed at push time and the incumbent may have risen since.
            if mode == ExplorationMode::BranchAndBound && prio < incumbent - PRUNE_MARGIN {
                stats.pruned_bound += 1;
                continue;
            }
            explored += 1;

            let Some(&node) = arena.get(ni as usize) else {
                continue;
            };

            if mode == ExplorationMode::GlobalVisited {
                if visited_global
                    .get(node.vertex.0 as usize)
                    .copied()
                    .unwrap_or(true)
                {
                    continue;
                }
                if let Some(flag) = visited_global.get_mut(node.vertex.0 as usize) {
                    *flag = true;
                }
            }

            if is_goal(node.vertex) {
                // Score the completed path.
                collect_profile(&arena, ni, &mut chain, &mut profile);
                deltas.clear();
                deltas.extend(profile.iter().map(|&(i, w, _)| (i, w)));
                let fairness = tracker.index_with(&deltas);
                let max_util = deltas
                    .iter()
                    .map(|&(i, w)| match infos.get(i) {
                        Some(info) if info.capacity > 0.0 => (info.load + w) / info.capacity,
                        _ => f64::INFINITY,
                    })
                    .fold(0.0f64, f64::max);
                let total_work: f64 = deltas.iter().map(|&(_, w)| w).sum();
                let work: Vec<(NodeId, f64)> = deltas
                    .iter()
                    .filter_map(|&(i, w)| ids.get(i).map(|&n| (n, w)))
                    .collect();
                candidates.push(Candidate {
                    path: collect_path(&arena, ni, &mut chain),
                    fairness,
                    est_secs: node.est_secs,
                    work,
                    max_util,
                    total_work,
                });
                if fairness > incumbent {
                    incumbent = fairness;
                }
                if self.kind == AllocatorKind::FirstFeasible {
                    break; // first complete feasible path in BFS order
                }
                // A goal vertex may still have outgoing edges (another goal
                // further on is possible but pointless); stop extending.
                continue;
            }

            // Expand. Hop-count prune before generating children.
            if let Some(max_hops) = qos.max_hops {
                if node.len as usize >= max_hops {
                    continue;
                }
            }

            for edge in gr.out_edges(node.vertex) {
                // Cycle check (simple paths): `to` must not be on the path
                // (the root vertex `init` is always on it).
                if mode == ExplorationMode::GlobalVisited {
                    if visited_global
                        .get(edge.to.0 as usize)
                        .copied()
                        .unwrap_or(true)
                    {
                        continue;
                    }
                } else {
                    let revisits = if use_bitmap {
                        node.visited >> edge.to.0 & 1 == 1
                    } else {
                        on_path(&arena, ni, edge.to)
                    };
                    if revisits {
                        continue;
                    }
                }

                let pi = edge_peer
                    .get(edge.id.0 as usize)
                    .copied()
                    .unwrap_or(NONE_IDX);
                if pi == NONE_IDX {
                    continue; // peer no longer in the domain
                }
                let Some(info) = infos.get(pi as usize) else {
                    continue;
                };

                // Accumulate this path's demands on edge.peer.
                let (prev_work, prev_bw) = accum_for_peer(&arena, ni, pi);
                let new_work = prev_work + edge.cost.work_per_sec;
                let new_bw = prev_bw + edge.cost.bandwidth_kbps;

                // (3) CPU sustainability.
                if new_work > info.capacity - info.load + 1e-9 {
                    continue;
                }
                // (2) bandwidth, including the user's floor.
                let avail_bw = info.available_bandwidth_kbps();
                if new_bw > avail_bw || qos.min_bandwidth_kbps > avail_bw {
                    continue;
                }
                // (4) deadline: setup at currently-available speed + hop latency.
                let setup = edge.cost.setup_work / info.available_capacity();
                let est = node.est_secs + setup + hop_latency_secs;
                if est > deadline_secs {
                    continue;
                }

                let child = PathNode {
                    parent: ni,
                    edge: edge.id,
                    vertex: edge.to,
                    peer_idx: pi,
                    work: new_work,
                    bw: new_bw,
                    len: node.len + 1,
                    est_secs: est,
                    visited: if use_bitmap {
                        node.visited | 1u128 << edge.to.0
                    } else {
                        0
                    },
                };

                let mut priority = 0.0;
                match mode {
                    ExplorationMode::BestFirst => {
                        // Greedy ordering heuristic: the fairness of the
                        // domain if the child's work were committed.
                        collect_profile(&arena, ni, &mut chain, &mut profile);
                        apply_hop(&mut profile, pi as usize, new_work, new_bw);
                        deltas.clear();
                        deltas.extend(profile.iter().map(|&(i, w, _)| (i, w)));
                        priority = tracker.index_with(&deltas);
                    }
                    ExplorationMode::BranchAndBound => {
                        collect_profile(&arena, ni, &mut chain, &mut profile);
                        apply_hop(&mut profile, pi as usize, new_work, new_bw);
                        let Some(ctx) = bnb.as_mut() else {
                            continue;
                        };
                        priority = ctx.upper_bound(
                            &tracker,
                            edge.to,
                            child.len,
                            est,
                            deadline_secs,
                            hop_latency_secs,
                            &profile,
                        );
                        if priority == f64::NEG_INFINITY || priority < incumbent - PRUNE_MARGIN {
                            stats.pruned_bound += 1;
                            continue;
                        }
                        if use_bitmap {
                            let key = (edge.to.0, child.visited);
                            let entries = dom.entry(key).or_default();
                            if is_dominated(
                                &arena,
                                entries,
                                &child,
                                &profile,
                                &mut chain,
                                &mut profile2,
                            ) {
                                stats.pruned_dominated += 1;
                                continue;
                            }
                            if entries.len() < DOM_CAP {
                                entries.push(crate::idx_u32(arena.len()));
                            }
                        }
                    }
                    _ => {}
                }

                let idx = crate::idx_u32(arena.len());
                arena.push(child);
                queue.push(idx, priority);
            }
        }

        select_candidate(self.kind, rng, candidates, explored, truncated, stats)
    }

    /// Re-scores a precomputed structural path set under the *current*
    /// peer loads and returns the same allocation [`Self::allocate`] would
    /// have produced (bit-for-bit), provided `sp` was enumerated over the
    /// same graph topology (`sp.epoch == gr.epoch()`) with the same
    /// `init`/`goals`/`max_hops`.
    ///
    /// This is the cache fast path: path *structure* depends only on the
    /// topology, while feasibility and scores depend on the load snapshot —
    /// so the expensive graph search is done once per topology epoch and
    /// each subsequent allocation walks the cached prefix tree. When the
    /// allocator is configured for [`ExplorationMode::BranchAndBound`]
    /// with the fairness objective, the replay applies the same admissible
    /// bound + dominance pruning over the cached tree, so the warm path
    /// composes with branch-and-bound instead of defeating it.
    ///
    /// Only meaningful for exhaustive candidate sets: callers should build
    /// `sp` via [`enumerate_structural_paths`] and use this with
    /// [`ExplorationMode::AllSimplePaths`] or
    /// [`ExplorationMode::BranchAndBound`] semantics (other modes replay
    /// with exhaustive semantics). `qos.max_hops` must equal the hop cap
    /// the enumeration honoured, and truncated enumerations must not be
    /// cached.
    pub fn allocate_from_paths(
        &self,
        gr: &ResourceGraph,
        view: &PeerView,
        sp: &StructuralPaths,
        qos: &QosSpec,
        rng: Option<&mut DetRng>,
    ) -> Result<Allocation, AllocError> {
        if sp.goals.is_empty() {
            return Err(AllocError::NoGoal);
        }
        if view.is_empty() {
            return Err(AllocError::EmptyDomain);
        }
        if sp.nodes.is_empty() {
            return Err(AllocError::NoFeasiblePath { explored: 0 });
        }

        // Pruned replay is answer-preserving only for the fairness
        // objective (same argument as the live search).
        let bnb_mode = self.params.mode == ExplorationMode::BranchAndBound
            && self.kind == AllocatorKind::MaxFairness;

        let (ids, infos): (Vec<NodeId>, Vec<PeerInfo>) =
            view.iter().map(|(n, i)| (*n, i.clone())).unzip();
        let tracker = FairnessTracker::from_loads(view.loads());
        let mut edge_peer = vec![NONE_IDX; gr.edge_capacity()];
        for edge in gr.edges() {
            if let Some(slot) = edge_peer.get_mut(edge.id.0 as usize) {
                *slot = match ids.binary_search(&edge.peer) {
                    Ok(i) => i as u32,
                    Err(_) => NONE_IDX,
                };
            }
        }
        let deadline_secs = qos.deadline.as_secs_f64();
        let hop_latency_secs = self.params.hop_latency.as_secs_f64();
        let num_states = gr.num_states();
        let use_bitmap = num_states <= 128;

        let mut bnb = if bnb_mode {
            Some(BnbCtx::new(
                gr,
                &sp.goals,
                qos,
                deadline_secs,
                hop_latency_secs,
                tracker.loads(),
            ))
        } else {
            None
        };
        let mut incumbent = f64::NEG_INFINITY;
        let mut stats = AllocStats::default();
        let mut dom: BTreeMap<(u32, u128), Vec<u32>> = BTreeMap::new();

        // Replay arena aligned index-for-index with `sp.nodes`, so the
        // shared ancestor-walk helpers (`accum_for_peer`,
        // `collect_profile`, `collect_path`) work unchanged. Slots of
        // infeasible or pruned tree nodes keep the placeholder and are
        // never referenced: a surviving node's ancestors all survived.
        let placeholder = PathNode {
            parent: NONE_IDX,
            edge: EdgeId(0),
            vertex: sp.init,
            peer_idx: NONE_IDX,
            work: 0.0,
            bw: 0,
            len: 0,
            est_secs: 0.0,
            visited: 0,
        };
        let mut arena: Vec<PathNode> = vec![placeholder; sp.nodes.len()];
        if let Some(root) = arena.get_mut(0) {
            root.visited = if use_bitmap { 1u128 << sp.init.0 } else { 0 };
        }
        let mut chain: Vec<u32> = Vec::new();
        let mut profile: Vec<(usize, f64, u32)> = Vec::new();
        let mut profile2: Vec<(usize, f64, u32)> = Vec::new();
        let mut deltas: Vec<(usize, f64)> = Vec::new();

        let mut candidates: Vec<Candidate> = Vec::new();
        let mut explored = 0usize;
        let mut truncated = false;

        // FIFO replay visits surviving tree nodes in exactly the live
        // BFS dequeue order, so candidate order — and therefore
        // FirstFeasible / Random / fuzzy-tiebreak behaviour — matches the
        // live search; the branch-and-bound heap replays the live pruning.
        let mut queue = if bnb_mode {
            Frontier::Best(std::collections::BinaryHeap::new(), 0)
        } else {
            Frontier::Fifo(VecDeque::new())
        };
        queue.push(0, 1.0);

        while let Some((ni, prio)) = queue.pop() {
            if explored >= self.params.max_explored {
                truncated = true;
                break;
            }
            if bnb_mode && prio < incumbent - PRUNE_MARGIN {
                stats.pruned_bound += 1;
                continue;
            }
            explored += 1;
            let Some(&snode) = sp.nodes.get(ni as usize) else {
                continue;
            };
            let Some(&node) = arena.get(ni as usize) else {
                continue;
            };

            if snode.goal {
                // Identical scoring block to the live search.
                collect_profile(&arena, ni, &mut chain, &mut profile);
                deltas.clear();
                deltas.extend(profile.iter().map(|&(i, w, _)| (i, w)));
                let fairness = tracker.index_with(&deltas);
                let max_util = deltas
                    .iter()
                    .map(|&(i, w)| match infos.get(i) {
                        Some(info) if info.capacity > 0.0 => (info.load + w) / info.capacity,
                        _ => f64::INFINITY,
                    })
                    .fold(0.0f64, f64::max);
                let total_work: f64 = deltas.iter().map(|&(_, w)| w).sum();
                let work: Vec<(NodeId, f64)> = deltas
                    .iter()
                    .filter_map(|&(i, w)| ids.get(i).map(|&n| (n, w)))
                    .collect();
                candidates.push(Candidate {
                    path: collect_path(&arena, ni, &mut chain),
                    fairness,
                    est_secs: node.est_secs,
                    work,
                    max_util,
                    total_work,
                });
                if fairness > incumbent {
                    incumbent = fairness;
                }
                if self.kind == AllocatorKind::FirstFeasible {
                    break;
                }
                continue;
            }

            // The enumeration already honoured `max_hops` and simple-path
            // cycle checks; only load/QoS feasibility needs replaying.
            let child_range = snode.child_start..snode.child_start + snode.child_count;
            for ci in child_range {
                let Some(&child_s) = sp.nodes.get(ci as usize) else {
                    continue;
                };
                let edge = gr.edge(child_s.edge);
                if !edge.alive {
                    continue; // stale structure; caller's epoch check failed
                }
                let pi = edge_peer
                    .get(child_s.edge.0 as usize)
                    .copied()
                    .unwrap_or(NONE_IDX);
                if pi == NONE_IDX {
                    continue; // peer no longer in the domain
                }
                let Some(info) = infos.get(pi as usize) else {
                    continue;
                };

                // Same feasibility rules and float arithmetic as the live
                // search (module docs, rules 2–4) — bit-identity depends
                // on it.
                let (prev_work, prev_bw) = accum_for_peer(&arena, ni, pi);
                let new_work = prev_work + edge.cost.work_per_sec;
                let new_bw = prev_bw + edge.cost.bandwidth_kbps;
                if new_work > info.capacity - info.load + 1e-9 {
                    continue;
                }
                let avail_bw = info.available_bandwidth_kbps();
                if new_bw > avail_bw || qos.min_bandwidth_kbps > avail_bw {
                    continue;
                }
                let setup = edge.cost.setup_work / info.available_capacity();
                let est = node.est_secs + setup + hop_latency_secs;
                if est > deadline_secs {
                    continue;
                }

                let child = PathNode {
                    parent: ni,
                    edge: child_s.edge,
                    vertex: child_s.vertex,
                    peer_idx: pi,
                    work: new_work,
                    bw: new_bw,
                    len: node.len + 1,
                    est_secs: est,
                    visited: if use_bitmap {
                        node.visited | 1u128 << child_s.vertex.0
                    } else {
                        0
                    },
                };

                let mut priority = 0.0;
                if bnb_mode {
                    collect_profile(&arena, ni, &mut chain, &mut profile);
                    apply_hop(&mut profile, pi as usize, new_work, new_bw);
                    let Some(ctx) = bnb.as_mut() else {
                        continue;
                    };
                    priority = ctx.upper_bound(
                        &tracker,
                        child_s.vertex,
                        child.len,
                        est,
                        deadline_secs,
                        hop_latency_secs,
                        &profile,
                    );
                    if priority == f64::NEG_INFINITY || priority < incumbent - PRUNE_MARGIN {
                        stats.pruned_bound += 1;
                        continue;
                    }
                    if use_bitmap {
                        let key = (child_s.vertex.0, child.visited);
                        let entries = dom.entry(key).or_default();
                        if is_dominated(
                            &arena,
                            entries,
                            &child,
                            &profile,
                            &mut chain,
                            &mut profile2,
                        ) {
                            stats.pruned_dominated += 1;
                            continue;
                        }
                        if entries.len() < DOM_CAP {
                            entries.push(ci);
                        }
                    }
                }

                if let Some(slot) = arena.get_mut(ci as usize) {
                    *slot = child;
                }
                queue.push(ci, priority);
            }
        }

        select_candidate(self.kind, rng, candidates, explored, truncated, stats)
    }
}

/// One prefix in a [`StructuralPaths`] tree: the edge taken into it, the
/// vertex reached, and the contiguous arena range holding its structural
/// children (BFS order groups siblings together).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructNode {
    /// Arena index of the parent prefix (`u32::MAX` for the root).
    pub parent: u32,
    /// First child's arena index (children are contiguous).
    pub child_start: u32,
    /// Number of structural children.
    pub child_count: u32,
    /// Edge taken into this node (undefined for the root).
    pub edge: EdgeId,
    /// Vertex this prefix ends at.
    pub vertex: StateId,
    /// Hop count of the prefix.
    pub len: u32,
    /// True when `vertex` is a goal state: the prefix is a complete path.
    pub goal: bool,
}

/// A topology-only path enumeration: the BFS prefix tree of every simple
/// path from `init` towards `goals` over live edges, independent of peer
/// loads. Produced by [`enumerate_structural_paths`] and replayed against
/// a load snapshot by [`FairnessAllocator::allocate_from_paths`], which
/// shares prefix arithmetic across paths instead of rescoring each path
/// from scratch.
///
/// Valid only while the graph's structural [`ResourceGraph::epoch`] equals
/// [`StructuralPaths::epoch`]; callers (the RM's path cache) must
/// re-enumerate after any topology change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructuralPaths {
    /// Structural epoch of the graph at enumeration time.
    pub epoch: u64,
    /// Initial state the enumeration started from.
    pub init: StateId,
    /// Goal states (sorted, deduplicated).
    pub goals: Vec<StateId>,
    /// The hop cap the enumeration honoured (`usize::MAX` if unbounded).
    pub max_hops: usize,
    /// Prefix arena in BFS discovery order; the root (the empty prefix at
    /// `init`) is index 0. Iterating goal nodes in arena order yields
    /// complete paths in exactly the order the live search scores them.
    pub nodes: Vec<StructNode>,
    /// True if enumeration stopped at the prefix cap; truncated sets must
    /// not be cached (the candidate order would diverge from the live
    /// search once loads change pruning behaviour).
    pub truncated: bool,
}

impl StructuralPaths {
    /// Number of complete (goal-reaching) structural paths in the tree.
    pub fn num_paths(&self) -> usize {
        self.nodes.iter().filter(|n| n.goal).count()
    }
}

/// Enumerates every simple path from `init` to a goal over live edges,
/// honouring only the *structural* QoS constraint (`max_hops`); load- and
/// deadline-dependent feasibility is applied later at re-scoring time.
///
/// `max_prefixes` bounds dequeued prefixes exactly like
/// [`AllocParams::max_explored`] bounds the live search.
pub fn enumerate_structural_paths(
    gr: &ResourceGraph,
    init: StateId,
    goals: &[StateId],
    max_hops: Option<usize>,
    max_prefixes: usize,
) -> Result<StructuralPaths, AllocError> {
    if goals.is_empty() {
        return Err(AllocError::NoGoal);
    }
    if init.0 as usize >= gr.num_states() || goals.iter().any(|g| g.0 as usize >= gr.num_states()) {
        return Err(AllocError::UnknownState);
    }
    let num_states = gr.num_states();
    let use_bitmap = num_states <= 128;
    let mut sorted_goals: Vec<StateId> = goals.to_vec();
    sorted_goals.sort();
    sorted_goals.dedup();

    // The visited bitmaps live only for the duration of the enumeration
    // (they are reconstructible from the parent chain); the persistent
    // tree keeps just the structure.
    let mut visited: Vec<u128> = vec![if use_bitmap { 1u128 << init.0 } else { 0 }];
    let mut nodes: Vec<StructNode> = vec![StructNode {
        parent: NONE_IDX,
        child_start: 0,
        child_count: 0,
        edge: EdgeId(0),
        vertex: init,
        len: 0,
        goal: goals.contains(&init),
    }];
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(0);
    let mut explored = 0usize;
    let mut truncated = false;

    while let Some(ni) = queue.pop_front() {
        if explored >= max_prefixes {
            truncated = true;
            break;
        }
        explored += 1;
        let Some(&node) = nodes.get(ni as usize) else {
            continue;
        };
        if node.goal {
            continue; // goal states are not extended (mirrors the search)
        }
        if let Some(mh) = max_hops {
            if node.len as usize >= mh {
                continue;
            }
        }
        let node_visited = visited.get(ni as usize).copied().unwrap_or(0);
        let child_start = crate::idx_u32(nodes.len());
        let mut child_count = 0u32;
        for edge in gr.out_edges(node.vertex) {
            let revisits = if use_bitmap {
                node_visited >> edge.to.0 & 1 == 1
            } else {
                struct_on_path(&nodes, ni, edge.to)
            };
            if revisits {
                continue;
            }
            let idx = crate::idx_u32(nodes.len());
            nodes.push(StructNode {
                parent: ni,
                child_start: 0,
                child_count: 0,
                edge: edge.id,
                vertex: edge.to,
                len: node.len + 1,
                goal: goals.contains(&edge.to),
            });
            visited.push(if use_bitmap {
                node_visited | 1u128 << edge.to.0
            } else {
                0
            });
            child_count += 1;
            queue.push_back(idx);
        }
        if let Some(n) = nodes.get_mut(ni as usize) {
            n.child_start = child_start;
            n.child_count = child_count;
        }
    }

    Ok(StructuralPaths {
        epoch: gr.epoch(),
        init,
        goals: sorted_goals,
        max_hops: max_hops.unwrap_or(usize::MAX),
        nodes,
        truncated,
    })
}

/// Simple-path cycle check over the structural tree (graphs too large for
/// the visited bitmap): is `v` already on the prefix ending at `ni`?
fn struct_on_path(nodes: &[StructNode], mut ni: u32, v: StateId) -> bool {
    loop {
        let Some(n) = nodes.get(ni as usize) else {
            return false;
        };
        if n.vertex == v {
            return true;
        }
        if n.parent == NONE_IDX {
            return false;
        }
        ni = n.parent;
    }
}

/// Runs the paper's default allocator (fairness argmax over all simple
/// QoS-feasible paths) — the free-function form of
/// [`FairnessAllocator::allocate`].
///
/// # Examples
///
/// ```
/// use arm_model::{allocate, MediaFormat, PeerInfo, PeerView, QosSpec, ResourceGraph};
/// use arm_util::{NodeId, SimDuration};
///
/// let (graph, _) = ResourceGraph::figure1();
/// let mut view = PeerView::new();
/// for p in 1..=5 {
///     view.upsert(NodeId::new(p), PeerInfo::idle(100.0, 10_000));
/// }
/// let init = graph.state_of(MediaFormat::paper_source()).unwrap();
/// let goal = graph.state_of(MediaFormat::paper_target()).unwrap();
/// let qos = QosSpec::with_deadline(SimDuration::from_secs(5));
/// let alloc = allocate(&graph, &view, init, &[goal], &qos).unwrap();
/// assert!(!alloc.path.is_empty());
/// assert!(alloc.fairness > 0.0 && alloc.fairness <= 1.0);
/// ```
pub fn allocate(
    gr: &ResourceGraph,
    view: &PeerView,
    init: StateId,
    goals: &[StateId],
    qos: &QosSpec,
) -> Result<Allocation, AllocError> {
    FairnessAllocator::paper().allocate(gr, view, init, goals, qos, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MediaFormat;
    use crate::peerview::PeerInfo;
    use arm_util::fairness_index;

    /// The Fig. 1 graph with a fully idle, capable domain.
    fn setup() -> (ResourceGraph, Vec<EdgeId>, PeerView, StateId, StateId) {
        let (gr, e) = ResourceGraph::figure1();
        let mut view = PeerView::new();
        for p in 1..=5u64 {
            view.upsert(NodeId::new(p), PeerInfo::idle(100.0, 10_000));
        }
        let init = gr.state_of(MediaFormat::paper_source()).unwrap();
        let goal = gr.state_of(MediaFormat::paper_target()).unwrap();
        (gr, e, view, init, goal)
    }

    fn lenient_qos() -> QosSpec {
        QosSpec::with_deadline(SimDuration::from_secs(10))
    }

    #[test]
    fn finds_the_three_paper_paths() {
        let (gr, e, view, init, goal) = setup();
        // Collect all feasible candidates by running Random across seeds —
        // instead, verify via FirstFeasible+exploration count and the known
        // path set by checking each path is feasible under MaxFairness with
        // forced tie conditions. Simplest: enumerate with a tiny helper.
        let alloc = allocate(&gr, &view, init, &[goal], &lenient_qos()).unwrap();
        // All three candidate paths are {e1,e2}, {e1,e3}, {e1,e4,e5,e8}.
        let valid = [
            vec![e[0], e[1]],
            vec![e[0], e[2]],
            vec![e[0], e[3], e[4], e[7]],
        ];
        assert!(valid.contains(&alloc.path), "got {:?}", alloc.path);
        assert!(!alloc.truncated);
        assert!(alloc.explored > 0);
    }

    #[test]
    fn idle_domain_prefers_spreading() {
        // On an idle domain the 2-hop paths load 2 peers; fairness of the
        // chosen allocation must equal the best achievable.
        let (gr, _e, view, init, goal) = setup();
        let alloc = allocate(&gr, &view, init, &[goal], &lenient_qos()).unwrap();
        // Verify the reported fairness matches a direct computation.
        let mut loads = view.loads();
        let ids: Vec<NodeId> = view.ids().collect();
        for (peer, w) in &alloc.load_deltas {
            let i = ids.iter().position(|n| n == peer).unwrap();
            loads[i] += w;
        }
        assert!((alloc.fairness - fairness_index(&loads)).abs() < 1e-12);
    }

    #[test]
    fn maxfairness_beats_or_equals_first_feasible() {
        let (gr, _e, mut view, init, goal) = setup();
        // Pre-load peer 2 so the e1,e2 path becomes unattractive.
        view.get_mut(NodeId::new(2)).unwrap().load = 80.0;
        let fair = allocate(&gr, &view, init, &[goal], &lenient_qos()).unwrap();
        let first = FairnessAllocator::with_kind(AllocatorKind::FirstFeasible)
            .allocate(&gr, &view, init, &[goal], &lenient_qos(), None)
            .unwrap();
        assert!(fair.fairness >= first.fairness - 1e-12);
        // With peer 2 at load 80, the fairest option is the 4-hop path
        // (loads 8,82,0,5,3 → F≈0.2816, beating {e1,e3}'s F≈0.2719): the
        // allocator spreads work across more peers rather than merely
        // avoiding the hot one.
        assert_eq!(fair.path.len(), 4);
    }

    #[test]
    fn deadline_prunes_long_path() {
        let (gr, e, view, init, goal) = setup();
        // Per-hop latency 20ms. The 2-hop paths estimate at 75ms
        // (20+8·0.25/100 s, 20+6·0.25/100 s); the 4-hop path at 125ms.
        // An 80ms deadline admits only the 2-hop paths.
        let qos = QosSpec::with_deadline(SimDuration::from_millis(80));
        let alloc = allocate(&gr, &view, init, &[goal], &qos).unwrap();
        assert!(alloc.path.len() == 2, "got {:?}", alloc.path);
        // And an impossible deadline yields NoFeasiblePath.
        let qos = QosSpec::with_deadline(SimDuration::from_millis(1));
        let err = allocate(&gr, &view, init, &[goal], &qos).unwrap_err();
        assert!(matches!(err, AllocError::NoFeasiblePath { .. }));
        let _ = e;
    }

    #[test]
    fn max_hops_prunes() {
        let (gr, _e, mut view, init, goal) = setup();
        // Kill the short paths but keep the long one alive: e3's host
        // (peer 3) fully loaded; e2's host (peer 2) left just enough
        // headroom for e8 (work 2) but not e2 (work 6).
        view.get_mut(NodeId::new(2)).unwrap().load = 95.0;
        view.get_mut(NodeId::new(3)).unwrap().load = 99.9;
        let qos = lenient_qos().max_hops(2);
        let err = allocate(&gr, &view, init, &[goal], &qos).unwrap_err();
        assert!(matches!(err, AllocError::NoFeasiblePath { .. }));
        // Without the cap the 4-hop path is found.
        let alloc = allocate(&gr, &view, init, &[goal], &lenient_qos()).unwrap();
        assert_eq!(alloc.path.len(), 4);
    }

    #[test]
    fn cpu_saturation_excludes_peer() {
        let (gr, e, mut view, init, goal) = setup();
        // Saturate peer 1, which hosts the mandatory first hop e1.
        view.get_mut(NodeId::new(1)).unwrap().load = 100.0;
        let err = allocate(&gr, &view, init, &[goal], &lenient_qos()).unwrap_err();
        assert!(matches!(err, AllocError::NoFeasiblePath { .. }));
        let _ = e;
    }

    #[test]
    fn bandwidth_floor_excludes_thin_peers() {
        let (gr, _e, mut view, init, goal) = setup();
        // Peer 2's link too thin for the floor; peer 3 fine.
        view.get_mut(NodeId::new(2))
            .unwrap()
            .bandwidth_capacity_kbps = 100;
        let qos = lenient_qos().min_bandwidth(320);
        let alloc = allocate(&gr, &view, init, &[goal], &qos).unwrap();
        assert!(!alloc.load_deltas.iter().any(|(p, _)| *p == NodeId::new(2)));
    }

    #[test]
    fn init_equals_goal_is_empty_path() {
        let (gr, _e, view, init, _goal) = setup();
        let alloc = allocate(&gr, &view, init, &[init], &lenient_qos()).unwrap();
        assert!(alloc.path.is_empty());
        assert_eq!(alloc.est_response, SimDuration::ZERO);
        assert_eq!(alloc.fairness, 1.0); // idle domain stays perfectly fair
    }

    #[test]
    fn multiple_goals_any_accepted() {
        let (gr, e, view, init, goal) = setup();
        let v5 = gr.edge(e[4]).to; // intermediate 128kbps state
        let alloc = allocate(&gr, &view, init, &[goal, v5], &lenient_qos()).unwrap();
        // v5 is reachable in 3 hops, goal in 2; either acceptable, and the
        // allocator scores both. The chosen path must end at one of them.
        let last = *alloc.path.last().unwrap();
        let end = gr.edge(last).to;
        assert!(end == goal || end == v5);
    }

    #[test]
    fn error_cases() {
        let (gr, _e, view, init, goal) = setup();
        assert_eq!(
            allocate(&gr, &view, init, &[], &lenient_qos()).unwrap_err(),
            AllocError::NoGoal
        );
        assert_eq!(
            allocate(&gr, &PeerView::new(), init, &[goal], &lenient_qos()).unwrap_err(),
            AllocError::EmptyDomain
        );
        assert_eq!(
            allocate(&gr, &view, StateId(99), &[goal], &lenient_qos()).unwrap_err(),
            AllocError::UnknownState
        );
    }

    #[test]
    fn global_visited_underexplores() {
        let (gr, _e, mut view, init, goal) = setup();
        view.get_mut(NodeId::new(2)).unwrap().load = 80.0;
        let all = FairnessAllocator {
            params: AllocParams::default(),
            kind: AllocatorKind::MaxFairness,
        }
        .allocate(&gr, &view, init, &[goal], &lenient_qos(), None)
        .unwrap();
        let literal = FairnessAllocator {
            params: AllocParams {
                mode: ExplorationMode::GlobalVisited,
                ..AllocParams::default()
            },
            kind: AllocatorKind::MaxFairness,
        }
        .allocate(&gr, &view, init, &[goal], &lenient_qos(), None)
        .unwrap();
        // The literal mode sees fewer candidates and can't beat the full
        // enumeration.
        assert!(literal.explored <= all.explored);
        assert!(literal.fairness <= all.fairness + 1e-12);
    }

    #[test]
    fn random_allocator_is_feasible_and_deterministic_per_seed() {
        let (gr, _e, view, init, goal) = setup();
        let alloc1 = FairnessAllocator::with_kind(AllocatorKind::Random)
            .allocate(
                &gr,
                &view,
                init,
                &[goal],
                &lenient_qos(),
                Some(&mut DetRng::new(5)),
            )
            .unwrap();
        let alloc2 = FairnessAllocator::with_kind(AllocatorKind::Random)
            .allocate(
                &gr,
                &view,
                init,
                &[goal],
                &lenient_qos(),
                Some(&mut DetRng::new(5)),
            )
            .unwrap();
        assert_eq!(alloc1.path, alloc2.path);
    }

    #[test]
    fn least_loaded_minimises_max_util() {
        let (gr, _e, mut view, init, goal) = setup();
        view.get_mut(NodeId::new(2)).unwrap().load = 50.0;
        let alloc = FairnessAllocator::with_kind(AllocatorKind::LeastLoaded)
            .allocate(&gr, &view, init, &[goal], &lenient_qos(), None)
            .unwrap();
        // Avoids peer 2 (the loaded host of e2/e8): picks {e1,e3}.
        assert!(!alloc.load_deltas.iter().any(|(p, _)| *p == NodeId::new(2)));
    }

    #[test]
    fn min_work_picks_cheapest_path() {
        let (gr, e, view, init, goal) = setup();
        let alloc = FairnessAllocator::with_kind(AllocatorKind::MinWork)
            .allocate(&gr, &view, init, &[goal], &lenient_qos(), None)
            .unwrap();
        // Total work: e1+e2 = 14, e1+e3 = 14, long path = 18. Tiebreak
        // (lexicographic) picks {e1,e2}.
        assert_eq!(alloc.path, vec![e[0], e[1]]);
    }

    #[test]
    fn truncation_flag_when_cap_hit() {
        let (gr, _e, view, init, goal) = setup();
        let alloc = FairnessAllocator {
            params: AllocParams {
                max_explored: 2,
                ..AllocParams::default()
            },
            kind: AllocatorKind::MaxFairness,
        }
        .allocate(&gr, &view, init, &[goal], &lenient_qos(), None);
        // With only 2 dequeues the search may or may not reach a goal;
        // either way it must not panic, and if it succeeds it's truncated.
        if let Ok(a) = alloc {
            assert!(a.truncated);
        }
    }

    #[test]
    fn fairness_choice_matches_exhaustive_argmax() {
        // Cross-check the argmax against scoring every valid path by hand.
        let (gr, e, mut view, init, goal) = setup();
        view.get_mut(NodeId::new(3)).unwrap().load = 30.0;
        view.get_mut(NodeId::new(5)).unwrap().load = 10.0;
        let qos = lenient_qos();
        let alloc = allocate(&gr, &view, init, &[goal], &qos).unwrap();

        let ids: Vec<NodeId> = view.ids().collect();
        let paths = [
            vec![e[0], e[1]],
            vec![e[0], e[2]],
            vec![e[0], e[3], e[4], e[7]],
        ];
        let mut best = f64::MIN;
        for p in &paths {
            let mut loads = view.loads();
            for &eid in p {
                let edge = gr.edge(eid);
                let i = ids.iter().position(|n| *n == edge.peer).unwrap();
                loads[i] += edge.cost.work_per_sec;
            }
            best = best.max(fairness_index(&loads));
        }
        assert!((alloc.fairness - best).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::media::{Codec, MediaFormat, Resolution};
    use crate::peerview::PeerInfo;
    use crate::service::ServiceCost;
    use arm_util::{fairness_index, ServiceId};
    use proptest::prelude::*;

    /// Random layered DAG: `layers` layers of up to `width` states; edges
    /// connect adjacent layers, hosted on random peers.
    fn random_graph(
        seed: u64,
        layers: usize,
        width: usize,
        peers: usize,
        edge_prob: f64,
    ) -> (ResourceGraph, PeerView, StateId, StateId) {
        let mut rng = DetRng::new(seed);
        let mut gr = ResourceGraph::new();
        let mut layer_states: Vec<Vec<StateId>> = Vec::new();
        let mut fmt_id = 0u32;
        let mut fresh_format = || {
            fmt_id += 1;
            MediaFormat::new(
                Codec::ALL[(fmt_id as usize) % Codec::ALL.len()],
                Resolution::new(100 + fmt_id as u16, 100),
                fmt_id,
            )
        };
        for li in 0..layers {
            let w = if li == 0 || li == layers - 1 {
                1
            } else {
                1 + rng.index(width)
            };
            layer_states.push((0..w).map(|_| gr.intern_state(fresh_format())).collect());
        }
        let mut svc = 0u64;
        for li in 0..layers - 1 {
            for &a in &layer_states[li] {
                for &b in &layer_states[li + 1] {
                    if rng.chance(edge_prob) || b == layer_states[li + 1][0] {
                        svc += 1;
                        gr.add_edge(
                            a,
                            b,
                            NodeId::new(rng.below(peers as u64)),
                            ServiceId::new(svc),
                            ServiceCost {
                                work_per_sec: rng.uniform(1.0, 8.0),
                                setup_work: rng.uniform(0.5, 2.0),
                                bandwidth_kbps: 64,
                            },
                        );
                    }
                }
            }
        }
        let mut view = PeerView::new();
        for p in 0..peers as u64 {
            let mut info = PeerInfo::idle(rng.uniform(50.0, 150.0), 100_000);
            info.load = rng.uniform(0.0, 40.0);
            view.upsert(NodeId::new(p), info);
        }
        (gr, view, layer_states[0][0], layer_states[layers - 1][0])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The paper's core guarantee: among all simple QoS-feasible paths,
        /// the returned one has maximal fairness. Verified against a
        /// brute-force DFS enumeration.
        #[test]
        fn maxfairness_is_argmax(seed in 0u64..500) {
            let (gr, view, init, goal) = random_graph(seed, 4, 3, 6, 0.7);
            let qos = QosSpec::with_deadline(SimDuration::from_secs(30));
            let result = allocate(&gr, &view, init, &[goal], &qos);

            // Brute force: enumerate simple paths by DFS and re-check
            // feasibility + fairness independently.
            let ids: Vec<NodeId> = view.ids().collect();
            let mut best: Option<f64> = None;
            let mut stack = vec![(init, Vec::<EdgeId>::new())];
            while let Some((v, path)) = stack.pop() {
                if v == goal {
                    // feasibility: accumulate per-peer work/bw
                    let mut work: Vec<(NodeId, f64)> = Vec::new();
                    let mut est = 0.0;
                    let mut feasible = true;
                    for &eid in &path {
                        let e = gr.edge(eid);
                        let info = view.get(e.peer).unwrap();
                        let w = work.iter_mut().find(|(p, _)| *p == e.peer);
                        match w {
                            Some(entry) => entry.1 += e.cost.work_per_sec,
                            None => work.push((e.peer, e.cost.work_per_sec)),
                        }
                        let acc = work.iter().find(|(p, _)| *p == e.peer).unwrap().1;
                        if acc > info.capacity - info.load + 1e-9 {
                            feasible = false;
                            break;
                        }
                        est += e.cost.setup_work / info.available_capacity() + 0.020;
                        if est > qos.deadline.as_secs_f64() {
                            feasible = false;
                            break;
                        }
                    }
                    if feasible {
                        let mut loads = view.loads();
                        for (p, w) in &work {
                            let i = ids.iter().position(|n| n == p).unwrap();
                            loads[i] += w;
                        }
                        let f = fairness_index(&loads);
                        best = Some(best.map_or(f, |b: f64| b.max(f)));
                    }
                    continue;
                }
                for e in gr.out_edges(v) {
                    let revisit = e.to == init
                        || path.iter().any(|&pe| gr.edge(pe).to == e.to);
                    if revisit {
                        continue;
                    }
                    let mut np = path.clone();
                    np.push(e.id);
                    stack.push((e.to, np));
                }
            }

            match (result, best) {
                (Ok(a), Some(b)) => prop_assert!((a.fairness - b).abs() < 1e-9,
                    "allocator {} vs brute force {}", a.fairness, b),
                (Err(AllocError::NoFeasiblePath{..}), None) => {}
                (r, b) => prop_assert!(false, "disagree: {r:?} vs brute {b:?}"),
            }
        }

        /// Allocation never violates the CPU sustainability invariant.
        #[test]
        fn allocation_respects_capacity(seed in 0u64..500) {
            let (gr, view, init, goal) = random_graph(seed, 5, 3, 4, 0.6);
            let qos = QosSpec::with_deadline(SimDuration::from_secs(30));
            if let Ok(a) = allocate(&gr, &view, init, &[goal], &qos) {
                for (peer, w) in &a.load_deltas {
                    let info = view.get(*peer).unwrap();
                    prop_assert!(info.load + w <= info.capacity + 1e-6);
                }
                // And the path is connected init -> goal.
                let mut v = init;
                for &eid in &a.path {
                    let e = gr.edge(eid);
                    prop_assert_eq!(e.from, v);
                    v = e.to;
                }
                prop_assert_eq!(v, goal);
            }
        }
    }
}

#[cfg(test)]
mod bestfirst_tests {
    use super::*;
    use crate::media::MediaFormat;
    use crate::peerview::PeerInfo;

    fn setup() -> (ResourceGraph, PeerView, StateId, StateId, QosSpec) {
        let (gr, _) = ResourceGraph::figure1();
        let mut view = PeerView::new();
        for p in 1..=5u64 {
            view.upsert(NodeId::new(p), PeerInfo::idle(100.0, 10_000));
        }
        let init = gr.state_of(MediaFormat::paper_source()).unwrap();
        let goal = gr.state_of(MediaFormat::paper_target()).unwrap();
        (
            gr,
            view,
            init,
            goal,
            QosSpec::with_deadline(SimDuration::from_secs(10)),
        )
    }

    fn with_mode(mode: ExplorationMode, cap: usize) -> FairnessAllocator {
        FairnessAllocator {
            params: AllocParams {
                mode,
                max_explored: cap,
                ..AllocParams::default()
            },
            kind: AllocatorKind::MaxFairness,
        }
    }

    #[test]
    fn bestfirst_matches_full_enumeration_uncapped() {
        let (gr, view, init, goal, qos) = setup();
        let full = with_mode(ExplorationMode::AllSimplePaths, 200_000)
            .allocate(&gr, &view, init, &[goal], &qos, None)
            .unwrap();
        let best = with_mode(ExplorationMode::BestFirst, 200_000)
            .allocate(&gr, &view, init, &[goal], &qos, None)
            .unwrap();
        // Same path space explored exhaustively ⇒ same optimum.
        assert!((full.fairness - best.fairness).abs() < 1e-12);
        assert_eq!(full.path, best.path);
    }

    #[test]
    fn bestfirst_beats_truncated_bfs_on_dense_graphs() {
        // A dense layered graph where a tight cap truncates BFS before it
        // reaches the well-balanced deep paths.
        use crate::media::{Codec, Resolution};
        use crate::service::ServiceCost;
        use arm_util::ServiceId;
        let mut rng = DetRng::new(3);
        let mut gr = ResourceGraph::new();
        let mut fmt = 0u32;
        let mut fresh = |gr: &mut ResourceGraph| {
            fmt += 1;
            gr.intern_state(MediaFormat::new(
                Codec::ALL[fmt as usize % Codec::ALL.len()],
                Resolution::new(100 + fmt as u16, 100),
                fmt,
            ))
        };
        let layers = 5usize;
        let width = 6usize;
        let mut layer_states = Vec::new();
        for li in 0..layers {
            let w = if li == 0 || li == layers - 1 {
                1
            } else {
                width
            };
            layer_states.push((0..w).map(|_| fresh(&mut gr)).collect::<Vec<_>>());
        }
        let mut svc = 0u64;
        for li in 0..layers - 1 {
            for &a in &layer_states[li] {
                for &b in &layer_states[li + 1] {
                    svc += 1;
                    gr.add_edge(
                        a,
                        b,
                        NodeId::new(rng.below(24)),
                        ServiceId::new(svc),
                        ServiceCost {
                            work_per_sec: rng.uniform(1.0, 8.0),
                            setup_work: 0.5,
                            bandwidth_kbps: 64,
                        },
                    );
                }
            }
        }
        let mut view = PeerView::new();
        for p in 0..24u64 {
            let mut info = PeerInfo::idle(100.0, 1_000_000);
            info.load = rng.uniform(0.0, 40.0);
            view.upsert(NodeId::new(p), info);
        }
        let init = layer_states[0][0];
        let goal = layer_states[layers - 1][0];
        let qos = QosSpec::with_deadline(SimDuration::from_secs(60));

        // Average over several randomised load refreshes.
        let mut wins = 0;
        let mut ties = 0;
        let trials = 10;
        for t in 0..trials {
            let mut v = view.clone();
            let mut r2 = DetRng::new(100 + t);
            let ids: Vec<NodeId> = v.ids().collect();
            for id in ids {
                v.get_mut(id).unwrap().load = r2.uniform(0.0, 50.0);
            }
            let cap = 60; // far below the full path count
            let bfs = with_mode(ExplorationMode::AllSimplePaths, cap).allocate(
                &gr,
                &v,
                init,
                &[goal],
                &qos,
                None,
            );
            let best = with_mode(ExplorationMode::BestFirst, cap).allocate(
                &gr,
                &v,
                init,
                &[goal],
                &qos,
                None,
            );
            match (bfs, best) {
                (Ok(b), Ok(bf)) => {
                    if bf.fairness > b.fairness + 1e-12 {
                        wins += 1;
                    } else if (bf.fairness - b.fairness).abs() <= 1e-12 {
                        ties += 1;
                    }
                }
                (Err(_), Ok(_)) => wins += 1,
                _ => {}
            }
        }
        assert!(
            wins + ties >= trials * 7 / 10,
            "best-first should match or beat truncated BFS most of the time: \
             {wins} wins, {ties} ties of {trials}"
        );
        assert!(wins >= 1, "and strictly win at least once ({wins})");
    }

    #[test]
    fn bestfirst_is_deterministic() {
        let (gr, view, init, goal, qos) = setup();
        let a = with_mode(ExplorationMode::BestFirst, 50)
            .allocate(&gr, &view, init, &[goal], &qos, None)
            .unwrap();
        let b = with_mode(ExplorationMode::BestFirst, 50)
            .allocate(&gr, &view, init, &[goal], &qos, None)
            .unwrap();
        assert_eq!(a.path, b.path);
    }
}

#[cfg(test)]
mod bnb_tests {
    use super::*;
    use crate::media::{Codec, MediaFormat, Resolution};
    use crate::peerview::PeerInfo;
    use crate::service::ServiceCost;
    use arm_util::ServiceId;
    use proptest::prelude::*;

    /// Random layered DAG with *duplicate* service edges (replicated
    /// instances of the same hop on different — and sometimes the same —
    /// peers), so dominance collapse has something to bite on.
    fn random_graph(
        seed: u64,
        layers: usize,
        width: usize,
        peers: usize,
        edge_prob: f64,
        duplicates: usize,
    ) -> (ResourceGraph, PeerView, StateId, StateId) {
        let mut rng = DetRng::new(seed);
        let mut gr = ResourceGraph::new();
        let mut layer_states: Vec<Vec<StateId>> = Vec::new();
        let mut fmt_id = 0u32;
        let mut fresh_format = || {
            fmt_id += 1;
            MediaFormat::new(
                Codec::ALL[(fmt_id as usize) % Codec::ALL.len()],
                Resolution::new(100 + fmt_id as u16, 100),
                fmt_id,
            )
        };
        for li in 0..layers {
            let w = if li == 0 || li == layers - 1 {
                1
            } else {
                1 + rng.index(width)
            };
            layer_states.push((0..w).map(|_| gr.intern_state(fresh_format())).collect());
        }
        let mut svc = 0u64;
        for li in 0..layers - 1 {
            for &a in &layer_states[li] {
                for &b in &layer_states[li + 1] {
                    if rng.chance(edge_prob) || b == layer_states[li + 1][0] {
                        let copies = 1 + rng.index(duplicates.max(1));
                        let cost = ServiceCost {
                            work_per_sec: rng.uniform(1.0, 8.0),
                            setup_work: rng.uniform(0.5, 2.0),
                            bandwidth_kbps: 64,
                        };
                        for _ in 0..copies {
                            svc += 1;
                            gr.add_edge(
                                a,
                                b,
                                NodeId::new(rng.below(peers as u64)),
                                ServiceId::new(svc),
                                cost,
                            );
                        }
                    }
                }
            }
        }
        let mut view = PeerView::new();
        for p in 0..peers as u64 {
            let mut info = PeerInfo::idle(rng.uniform(50.0, 150.0), 100_000);
            info.load = rng.uniform(0.0, 40.0);
            view.upsert(NodeId::new(p), info);
        }
        (gr, view, layer_states[0][0], layer_states[layers - 1][0])
    }

    fn alloc_with(mode: ExplorationMode, kind: AllocatorKind) -> FairnessAllocator {
        FairnessAllocator {
            params: AllocParams {
                mode,
                ..AllocParams::default()
            },
            kind,
        }
    }

    /// Bitwise equality of two allocation results (path, fairness,
    /// estimate and per-peer load deltas), the contract BranchAndBound and
    /// the structural-path cache both guarantee.
    fn assert_identical(a: &Result<Allocation, AllocError>, b: &Result<Allocation, AllocError>) {
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.path, b.path, "paths differ");
                assert_eq!(
                    a.fairness.to_bits(),
                    b.fairness.to_bits(),
                    "fairness differs: {} vs {}",
                    a.fairness,
                    b.fairness
                );
                assert_eq!(a.est_response, b.est_response, "estimates differ");
                assert_eq!(a.load_deltas.len(), b.load_deltas.len());
                for (x, y) in a.load_deltas.iter().zip(&b.load_deltas) {
                    assert_eq!(x.0, y.0);
                    assert_eq!(x.1.to_bits(), y.1.to_bits(), "load delta differs");
                }
            }
            (Err(x), Err(y)) => {
                // Same failure class; explored counts legitimately differ.
                assert_eq!(
                    std::mem::discriminant(x),
                    std::mem::discriminant(y),
                    "error kinds differ: {x:?} vs {y:?}"
                );
            }
            (x, y) => panic!("results disagree: {x:?} vs {y:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The headline identity: branch-and-bound returns the *same*
        /// allocation as exhaustive enumeration — path, fairness, estimate
        /// and load deltas, bit for bit — while exploring fewer prefixes.
        #[test]
        fn bnb_identical_to_exhaustive(seed in 0u64..400) {
            let (gr, view, init, goal) = random_graph(seed, 5, 3, 6, 0.7, 2);
            let qos = QosSpec::with_deadline(SimDuration::from_secs(30));
            let full = alloc_with(ExplorationMode::AllSimplePaths, AllocatorKind::MaxFairness)
                .allocate(&gr, &view, init, &[goal], &qos, None);
            let bnb = alloc_with(ExplorationMode::BranchAndBound, AllocatorKind::MaxFairness)
                .allocate(&gr, &view, init, &[goal], &qos, None);
            assert_identical(&full, &bnb);
            if let (Ok(f), Ok(b)) = (&full, &bnb) {
                prop_assert!(
                    b.stats.explored_prefixes <= f.stats.explored_prefixes,
                    "bnb explored more ({}) than exhaustive ({})",
                    b.stats.explored_prefixes,
                    f.stats.explored_prefixes
                );
            }
        }

        /// Replaying a cached structural path set under the same loads is
        /// bit-identical to the live search, for every objective (the RNG
        /// consumption of `Random` included).
        #[test]
        fn cached_paths_identical_to_live(seed in 0u64..300) {
            let (gr, view, init, goal) = random_graph(seed, 4, 3, 6, 0.7, 2);
            let qos = QosSpec::with_deadline(SimDuration::from_secs(30));
            let sp = enumerate_structural_paths(&gr, init, &[goal], qos.max_hops, 200_000)
                .unwrap();
            prop_assert!(!sp.truncated);
            prop_assert_eq!(sp.epoch, gr.epoch());
            for kind in [
                AllocatorKind::MaxFairness,
                AllocatorKind::FirstFeasible,
                AllocatorKind::LeastLoaded,
                AllocatorKind::MinWork,
            ] {
                let a = alloc_with(ExplorationMode::AllSimplePaths, kind)
                    .allocate(&gr, &view, init, &[goal], &qos, None);
                let c = alloc_with(ExplorationMode::AllSimplePaths, kind)
                    .allocate_from_paths(&gr, &view, &sp, &qos, None);
                assert_identical(&a, &c);
            }
            let mut r1 = DetRng::new(seed ^ 0xD1CE);
            let mut r2 = DetRng::new(seed ^ 0xD1CE);
            let a = alloc_with(ExplorationMode::AllSimplePaths, AllocatorKind::Random)
                .allocate(&gr, &view, init, &[goal], &qos, Some(&mut r1));
            let c = alloc_with(ExplorationMode::AllSimplePaths, AllocatorKind::Random)
                .allocate_from_paths(&gr, &view, &sp, &qos, Some(&mut r2));
            assert_identical(&a, &c);
            // The *pruned* replay (warm cache + branch-and-bound) must
            // still match the exhaustive live oracle bit-for-bit.
            let a = alloc_with(ExplorationMode::AllSimplePaths, AllocatorKind::MaxFairness)
                .allocate(&gr, &view, init, &[goal], &qos, None);
            let c = alloc_with(ExplorationMode::BranchAndBound, AllocatorKind::MaxFairness)
                .allocate_from_paths(&gr, &view, &sp, &qos, None);
            assert_identical(&a, &c);
        }

        /// BranchAndBound under a non-fairness objective silently falls
        /// back to exhaustive enumeration — never a wrong answer.
        #[test]
        fn bnb_fallback_for_other_objectives(seed in 0u64..150) {
            let (gr, view, init, goal) = random_graph(seed, 4, 3, 5, 0.7, 2);
            let qos = QosSpec::with_deadline(SimDuration::from_secs(30));
            for kind in [AllocatorKind::LeastLoaded, AllocatorKind::MinWork] {
                let full = alloc_with(ExplorationMode::AllSimplePaths, kind)
                    .allocate(&gr, &view, init, &[goal], &qos, None);
                let bnb = alloc_with(ExplorationMode::BranchAndBound, kind)
                    .allocate(&gr, &view, init, &[goal], &qos, None);
                assert_identical(&full, &bnb);
            }
        }
    }

    #[test]
    fn bnb_prunes_substantially_on_dense_graphs() {
        // A wide graph with replicated service edges: exhaustive
        // enumeration visits thousands of prefixes, the pruned search an
        // order of magnitude fewer.
        let (gr, view, init, goal) = random_graph(42, 6, 5, 12, 0.9, 3);
        let qos = QosSpec::with_deadline(SimDuration::from_secs(60));
        let full = alloc_with(ExplorationMode::AllSimplePaths, AllocatorKind::MaxFairness)
            .allocate(&gr, &view, init, &[goal], &qos, None)
            .unwrap();
        let bnb = alloc_with(ExplorationMode::BranchAndBound, AllocatorKind::MaxFairness)
            .allocate(&gr, &view, init, &[goal], &qos, None)
            .unwrap();
        assert_eq!(full.path, bnb.path);
        assert_eq!(full.fairness.to_bits(), bnb.fairness.to_bits());
        assert!(
            bnb.stats.explored_prefixes * 2 <= full.stats.explored_prefixes,
            "expected ≥2× reduction: bnb {} vs full {}",
            bnb.stats.explored_prefixes,
            full.stats.explored_prefixes
        );
        assert!(
            bnb.stats.pruned_bound > 0,
            "bound pruning never fired on a dense graph"
        );
    }

    #[test]
    fn random_without_rng_falls_back_deterministically() {
        let (gr, view, init, goal) = random_graph(7, 4, 3, 5, 0.8, 1);
        let qos = QosSpec::with_deadline(SimDuration::from_secs(30));
        let a = alloc_with(ExplorationMode::AllSimplePaths, AllocatorKind::Random)
            .allocate(&gr, &view, init, &[goal], &qos, None)
            .unwrap();
        let ff = alloc_with(
            ExplorationMode::AllSimplePaths,
            AllocatorKind::FirstFeasible,
        )
        .allocate(&gr, &view, init, &[goal], &qos, None)
        .unwrap();
        // No RNG: "random" degrades to the first feasible candidate, but
        // keeps scoring every candidate (explored counts differ).
        assert_eq!(a.path, ff.path);
    }

    #[test]
    fn structural_enumeration_is_invalidated_by_epoch() {
        let (mut gr, _view, init, goal) = random_graph(11, 4, 3, 5, 0.8, 1);
        let sp = enumerate_structural_paths(&gr, init, &[goal], None, 200_000).unwrap();
        assert_eq!(sp.epoch, gr.epoch());
        // A topology change bumps the epoch; the cached set is now stale.
        gr.add_edge(
            init,
            goal,
            NodeId::new(0),
            ServiceId::new(9_999),
            ServiceCost {
                work_per_sec: 1.0,
                setup_work: 0.5,
                bandwidth_kbps: 64,
            },
        );
        assert_ne!(sp.epoch, gr.epoch());
    }

    #[test]
    fn stats_roundtrip_and_merge() {
        let mut a = AllocStats {
            explored_prefixes: 3,
            pruned_bound: 2,
            pruned_dominated: 1,
        };
        a.merge(&AllocStats {
            explored_prefixes: 10,
            pruned_bound: 20,
            pruned_dominated: 30,
        });
        assert_eq!(a.explored_prefixes, 13);
        assert_eq!(a.pruned_bound, 22);
        assert_eq!(a.pruned_dominated, 31);
    }
}
