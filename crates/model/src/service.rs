//! Services peers can offer, and their cost model.
//!
//! §3.1 item 6: the RM records "the services `S_ij` each processor can
//! offer — for a transcoding application, these would be the transcoding
//! services available in each processor". A service is a *capability*
//! (transcode format A → format B); instantiating it on a peer produces a
//! resource-graph edge.

use crate::media::MediaFormat;
use arm_util::ServiceId;
use serde::{Deserialize, Serialize};

/// The processing and network cost of running a service for one session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceCost {
    /// Sustained processing load while the session is active, in work
    /// units per second — this is what accumulates into the peer's `l_i`.
    pub work_per_sec: f64,
    /// One-off setup computation, in work units (connection establishment,
    /// codec init).
    pub setup_work: f64,
    /// Bandwidth occupied on the peer's links while active, in kbps
    /// (input stream + output stream).
    pub bandwidth_kbps: u32,
}

impl ServiceCost {
    /// A zero-cost service (used by pass-through/relay edges).
    pub const FREE: ServiceCost = ServiceCost {
        work_per_sec: 0.0,
        setup_work: 0.0,
        bandwidth_kbps: 0,
    };
}

/// A service specification: what transformation it performs and what it
/// costs. Peers advertise sets of these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Unique id of the service *type*.
    pub id: ServiceId,
    /// Input application state.
    pub input: MediaFormat,
    /// Output application state.
    pub output: MediaFormat,
    /// Cost of one active session of this service.
    pub cost: ServiceCost,
}

impl ServiceSpec {
    /// Builds a transcoder between two formats with a cost derived from the
    /// standard work model (`MediaFormat::transcode_work_from`), scaled by
    /// `work_scale` (work units per abstract transcode unit).
    pub fn transcoder(
        id: ServiceId,
        input: MediaFormat,
        output: MediaFormat,
        work_scale: f64,
    ) -> Self {
        let work = output.transcode_work_from(input) * work_scale;
        Self {
            id,
            input,
            output,
            cost: ServiceCost {
                work_per_sec: work,
                setup_work: work * 0.25,
                bandwidth_kbps: input.bandwidth_kbps() + output.bandwidth_kbps(),
            },
        }
    }

    /// True if this service can start from `format`.
    pub fn accepts(&self, format: MediaFormat) -> bool {
        self.input == format
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::{Codec, Resolution};

    #[test]
    fn transcoder_costs_follow_work_model() {
        let a = MediaFormat::paper_source();
        let b = MediaFormat::paper_target();
        let s = ServiceSpec::transcoder(ServiceId::new(1), a, b, 10.0);
        assert!(s.cost.work_per_sec > 0.0);
        assert!((s.cost.setup_work - s.cost.work_per_sec * 0.25).abs() < 1e-12);
        assert_eq!(s.cost.bandwidth_kbps, 512 + 64);
        assert!(s.accepts(a));
        assert!(!s.accepts(b));
    }

    #[test]
    fn identity_transcoder_is_free_work() {
        let a = MediaFormat::new(Codec::Mpeg2, Resolution::VGA, 128);
        let s = ServiceSpec::transcoder(ServiceId::new(2), a, a, 10.0);
        assert_eq!(s.cost.work_per_sec, 0.0);
        assert_eq!(s.cost.bandwidth_kbps, 256);
    }

    #[test]
    fn free_cost_constant() {
        assert_eq!(ServiceCost::FREE.work_per_sec, 0.0);
        assert_eq!(ServiceCost::FREE.bandwidth_kbps, 0);
    }
}
