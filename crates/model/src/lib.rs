//! Application model for the adaptive P2P resource-management middleware.
//!
//! This crate contains the vocabulary of the paper's information base (§3)
//! and its allocation machinery (§4.3):
//!
//! * [`media`] — codecs, resolutions, formats and media objects: the
//!   motivating transcoding application's data model (§1, §3.1 item 5).
//! * [`qos`] — per-task QoS requirements: `Deadline_t`, `Importance_t`,
//!   bandwidth floors (§3.3).
//! * [`task`] — application tasks: a request to bring an object from an
//!   initial application state to a required output state.
//! * [`service`] — services a peer can offer (§3.1 item 6), with their
//!   processing-work and bandwidth cost model.
//! * [`peerview`] — the Resource Manager's view of per-peer capacity,
//!   load `l_i` and bandwidth `bw_i` (§3.1 items 3–4).
//! * [`resource_graph`] — the domain resource graph `G_r`: vertices are
//!   application states, edges are service instances hosted on peers
//!   (§3.4, Fig. 1A).
//! * [`service_graph`] — per-task service graphs `G_s` produced by
//!   allocation (§3.3, Fig. 1B).
//! * [`alloc`] — the task-allocation algorithm of Fig. 3 (BFS + QoS
//!   pruning + fairness-index argmax) and the baseline allocators used in
//!   the evaluation.
//!
//! Everything is plain data + pure functions: no I/O, no clocks, no
//! randomness (allocator baselines that need randomness take an explicit
//! RNG). The sans-I/O state machines in `arm-core` and both runtimes build
//! on these types.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Narrows an arena length to the `u32` index space used by `StateId`,
/// `EdgeId` and the allocator search arenas. Arenas stay far below
/// `u32::MAX` entries; the clamp makes overflow impossible instead of
/// silently wrapping, and debug builds assert it never engages.
pub(crate) fn idx_u32(n: usize) -> u32 {
    debug_assert!(u32::try_from(n).is_ok(), "arena exceeds u32 index space");
    n.min(u32::MAX as usize) as u32
}

pub mod alloc;
pub mod media;
pub mod peerview;
pub mod qos;
pub mod resource_graph;
pub mod service;
pub mod service_graph;
pub mod task;

pub use alloc::{
    allocate, enumerate_structural_paths, AllocError, AllocParams, AllocStats, Allocation,
    AllocatorKind, ExplorationMode, FairnessAllocator, StructNode, StructuralPaths,
};
pub use media::{Codec, MediaFormat, MediaObject, Resolution};
pub use peerview::{PeerInfo, PeerView};
pub use qos::QosSpec;
pub use resource_graph::{EdgeId, ResourceEdge, ResourceGraph, StateId};
pub use service::{ServiceCost, ServiceSpec};
pub use service_graph::{HopStatus, ServiceGraph, ServiceHop};
pub use task::{Importance, TaskSpec};
