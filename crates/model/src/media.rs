//! Media data model for the motivating transcoding application.
//!
//! §3.1 of the paper: application objects "would be media objects and their
//! characteristics are also stored as meta-data (hash value, bitrate,
//! resolution, codec)". Formats double as the *application states* of the
//! resource graph: transcoding a stream moves it from one format vertex to
//! another (Fig. 1).

use arm_util::ObjectId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Video codec of a media stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
// lint: codec names (Mpeg2, Mpeg4, ...) are self-describing; per-variant
// doc comments would be noise.
#[allow(missing_docs)]
pub enum Codec {
    Mpeg2,
    Mpeg4,
    H263,
    H264,
    Mjpeg,
}

impl Codec {
    /// All codecs, for enumeration in workload generators.
    pub const ALL: [Codec; 5] = [
        Codec::Mpeg2,
        Codec::Mpeg4,
        Codec::H263,
        Codec::H264,
        Codec::Mjpeg,
    ];

    /// Relative decode+encode complexity of the codec, used in transcoder
    /// work-cost models (H.264 is the most expensive to encode, MJPEG the
    /// cheapest).
    pub fn complexity(self) -> f64 {
        match self {
            Codec::Mjpeg => 0.5,
            Codec::H263 => 0.8,
            Codec::Mpeg2 => 1.0,
            Codec::Mpeg4 => 1.3,
            Codec::H264 => 2.0,
        }
    }
}

impl fmt::Display for Codec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Codec::Mpeg2 => "MPEG-2",
            Codec::Mpeg4 => "MPEG-4",
            Codec::H263 => "H.263",
            Codec::H264 => "H.264",
            Codec::Mjpeg => "MJPEG",
        };
        f.write_str(s)
    }
}

/// Spatial resolution of a media stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Resolution {
    /// Width in pixels.
    pub width: u16,
    /// Height in pixels.
    pub height: u16,
}

impl Resolution {
    /// 800×600 — the paper's example source resolution.
    pub const SVGA: Resolution = Resolution::new(800, 600);
    /// 640×480 — the paper's example target resolution.
    pub const VGA: Resolution = Resolution::new(640, 480);
    /// 320×240, for constrained mobile receivers.
    pub const QVGA: Resolution = Resolution::new(320, 240);
    /// 176×144, the classic H.263 videophone resolution.
    pub const QCIF: Resolution = Resolution::new(176, 144);

    /// Creates a resolution.
    pub const fn new(width: u16, height: u16) -> Self {
        Self { width, height }
    }

    /// Pixel count, the dominant factor in transcoding work.
    pub const fn pixels(self) -> u32 {
        self.width as u32 * self.height as u32
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// A concrete media format: the triple the paper's transcoding example
/// manipulates (codec, resolution, bitrate).
///
/// Formats are the application states of the resource graph: the Fig. 1
/// example asks for a path from `800x600 MPEG-2 @ 512 kbps` to
/// `640x480 MPEG-4 @ 64 kbps`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MediaFormat {
    /// Video codec.
    pub codec: Codec,
    /// Spatial resolution.
    pub resolution: Resolution,
    /// Stream bitrate in kilobits per second.
    pub bitrate_kbps: u32,
}

impl MediaFormat {
    /// Creates a format.
    pub const fn new(codec: Codec, resolution: Resolution, bitrate_kbps: u32) -> Self {
        Self {
            codec,
            resolution,
            bitrate_kbps,
        }
    }

    /// The paper's example source format: 800×600 MPEG-2 at 512 kbps.
    pub const fn paper_source() -> Self {
        Self::new(Codec::Mpeg2, Resolution::SVGA, 512)
    }

    /// The paper's example target format: 640×480 MPEG-4 at 64 kbps.
    pub const fn paper_target() -> Self {
        Self::new(Codec::Mpeg4, Resolution::VGA, 64)
    }

    /// Bandwidth this stream consumes on a link, in kbps.
    pub const fn bandwidth_kbps(self) -> u32 {
        self.bitrate_kbps
    }

    /// Relative work (abstract units per streamed second) to transcode
    /// *into* this format from `from`. Scales with the pixel throughput of
    /// both sides and the codec complexities; zero iff `from == self`.
    pub fn transcode_work_from(self, from: MediaFormat) -> f64 {
        if from == self {
            return 0.0;
        }
        // Decode cost of the input + encode cost of the output, in units of
        // "megapixels × codec complexity". Encoding dominates decoding in
        // real transcoders; weight it double.
        let decode = from.resolution.pixels() as f64 / 1e6 * from.codec.complexity();
        let encode = self.resolution.pixels() as f64 / 1e6 * self.codec.complexity();
        decode + 2.0 * encode
    }
}

impl fmt::Display for MediaFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} @ {}kbps",
            self.resolution, self.codec, self.bitrate_kbps
        )
    }
}

/// A stored media object: the unit peers share and tasks request (§3.1,
/// item 5: meta-data is "hash value, bitrate, resolution, codec").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MediaObject {
    /// Unique object identifier.
    pub id: ObjectId,
    /// Human-readable name the user queries by (`id_t` in §4.3).
    pub name: String,
    /// Content hash (stands in for the real digest).
    pub hash: u64,
    /// The format the object is stored in.
    pub format: MediaFormat,
    /// Play-out duration of the media, in seconds.
    pub duration_secs: f64,
}

impl MediaObject {
    /// Creates an object; the hash is derived deterministically from the
    /// name so that replicas of the same content agree.
    pub fn new(
        id: ObjectId,
        name: impl Into<String>,
        format: MediaFormat,
        duration_secs: f64,
    ) -> Self {
        let name = name.into();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            id,
            name,
            hash: h,
            format,
            duration_secs,
        }
    }

    /// Total size of the object in kilobits (bitrate × duration).
    pub fn size_kbits(&self) -> f64 {
        self.format.bitrate_kbps as f64 * self.duration_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formats() {
        let src = MediaFormat::paper_source();
        assert_eq!(src.codec, Codec::Mpeg2);
        assert_eq!(src.resolution, Resolution::new(800, 600));
        assert_eq!(src.bitrate_kbps, 512);
        assert_eq!(src.to_string(), "800x600 MPEG-2 @ 512kbps");

        let dst = MediaFormat::paper_target();
        assert_eq!(dst.codec, Codec::Mpeg4);
        assert_eq!(dst.resolution, Resolution::VGA);
        assert_eq!(dst.bitrate_kbps, 64);
        assert_eq!(dst.to_string(), "640x480 MPEG-4 @ 64kbps");
    }

    #[test]
    fn resolution_pixels() {
        assert_eq!(Resolution::SVGA.pixels(), 480_000);
        assert_eq!(Resolution::VGA.pixels(), 307_200);
        assert_eq!(Resolution::QCIF.to_string(), "176x144");
    }

    #[test]
    fn identity_transcode_is_free() {
        let f = MediaFormat::paper_source();
        assert_eq!(f.transcode_work_from(f), 0.0);
    }

    #[test]
    fn transcode_work_scales_with_pixels_and_codec() {
        let big = MediaFormat::new(Codec::H264, Resolution::SVGA, 512);
        let small = MediaFormat::new(Codec::Mjpeg, Resolution::QCIF, 64);
        let down = small.transcode_work_from(big);
        let up = big.transcode_work_from(small);
        assert!(down > 0.0 && up > 0.0);
        // Encoding into the bigger/costlier format dominates.
        assert!(up > down);
    }

    #[test]
    fn codec_complexities_ordered() {
        assert!(Codec::H264.complexity() > Codec::Mpeg4.complexity());
        assert!(Codec::Mpeg4.complexity() > Codec::Mpeg2.complexity());
        assert!(Codec::Mjpeg.complexity() < Codec::H263.complexity());
        assert_eq!(Codec::ALL.len(), 5);
    }

    #[test]
    fn media_object_hash_is_content_addressed() {
        let f = MediaFormat::paper_source();
        let a = MediaObject::new(ObjectId::new(1), "trailer", f, 120.0);
        let b = MediaObject::new(ObjectId::new(2), "trailer", f, 120.0);
        let c = MediaObject::new(ObjectId::new(3), "other", f, 120.0);
        assert_eq!(a.hash, b.hash);
        assert_ne!(a.hash, c.hash);
    }

    #[test]
    fn media_object_size() {
        let f = MediaFormat::new(Codec::Mpeg2, Resolution::VGA, 100);
        let o = MediaObject::new(ObjectId::new(1), "x", f, 60.0);
        assert_eq!(o.size_kbits(), 6000.0);
    }
}
