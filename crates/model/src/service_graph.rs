//! Per-task application service graphs `G_s` (§3.3, Fig. 1B).
//!
//! "While `G_r` represents the number of available services and current
//! resource usage in the system, every produced `G_s` refers only to a
//! particular application task execution." A service graph is the chain of
//! service invocations the allocator chose for one task: an ordered list of
//! *hops*, each binding a resource-graph edge, the peer that hosts it and
//! the service it runs.

use crate::media::MediaFormat;
use crate::resource_graph::{EdgeId, ResourceGraph};
use crate::service::ServiceCost;
use arm_util::{NodeId, ServiceId, TaskId};
use serde::{Deserialize, Serialize};

/// Execution state of one hop of a service graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HopStatus {
    /// Chosen by the allocator, composition message not yet acknowledged.
    Composing,
    /// Connection established, service running.
    Active,
    /// Session finished at this hop.
    Completed,
    /// The hosting peer failed or left; the hop needs repair (§4.1).
    Failed,
}

/// One service invocation within a task's service graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceHop {
    /// The resource-graph edge this hop was allocated from.
    pub edge: EdgeId,
    /// The peer executing the service (a vertex of Fig. 1B).
    pub peer: NodeId,
    /// The service type being run.
    pub service: ServiceId,
    /// Input format of the hop.
    pub input: MediaFormat,
    /// Output format of the hop.
    pub output: MediaFormat,
    /// Cost charged to the peer while the hop is active.
    pub cost: ServiceCost,
    /// Current status.
    pub status: HopStatus,
}

/// The service graph `G_s` of one task: source → hops → receiver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceGraph {
    /// The task this graph executes.
    pub task: TaskId,
    /// The peer holding the source object (start of the stream).
    pub source: NodeId,
    /// The requesting peer (end of the stream).
    pub receiver: NodeId,
    /// The service hops, in stream order.
    pub hops: Vec<ServiceHop>,
}

impl ServiceGraph {
    /// Builds a service graph from an allocated path through `G_r`.
    pub fn from_path(
        task: TaskId,
        source: NodeId,
        receiver: NodeId,
        gr: &ResourceGraph,
        path: &[EdgeId],
    ) -> Self {
        let hops = path
            .iter()
            .map(|&eid| {
                let e = gr.edge(eid);
                ServiceHop {
                    edge: eid,
                    peer: e.peer,
                    service: e.service,
                    input: gr.format(e.from),
                    output: gr.format(e.to),
                    cost: e.cost,
                    status: HopStatus::Composing,
                }
            })
            .collect();
        Self {
            task,
            source,
            receiver,
            hops,
        }
    }

    /// Every peer participating in the graph, in stream order, including
    /// source and receiver, without duplicates.
    pub fn participants(&self) -> Vec<NodeId> {
        let mut ps = vec![self.source];
        for h in &self.hops {
            if !ps.contains(&h.peer) {
                ps.push(h.peer);
            }
        }
        if !ps.contains(&self.receiver) {
            ps.push(self.receiver);
        }
        ps
    }

    /// True if `peer` executes any hop of this graph (the §4.1 check: "if
    /// the service graph included the peer in question as one of its
    /// vertices … an application task has been interrupted").
    pub fn uses_peer(&self, peer: NodeId) -> bool {
        self.hops.iter().any(|h| h.peer == peer)
    }

    /// Marks every hop hosted by `peer` failed; returns the index of the
    /// first failed hop, if any.
    pub fn fail_peer(&mut self, peer: NodeId) -> Option<usize> {
        let mut first = None;
        for (i, h) in self.hops.iter_mut().enumerate() {
            if h.peer == peer && h.status != HopStatus::Completed {
                h.status = HopStatus::Failed;
                if first.is_none() {
                    first = Some(i);
                }
            }
        }
        first
    }

    /// Marks all hops active (composition acknowledged end-to-end).
    pub fn activate(&mut self) {
        for h in &mut self.hops {
            if h.status == HopStatus::Composing {
                h.status = HopStatus::Active;
            }
        }
    }

    /// Marks all non-failed hops completed (session tear-down).
    pub fn complete(&mut self) {
        for h in &mut self.hops {
            if h.status != HopStatus::Failed {
                h.status = HopStatus::Completed;
            }
        }
    }

    /// True if every hop is active.
    pub fn is_fully_active(&self) -> bool {
        self.hops.iter().all(|h| h.status == HopStatus::Active)
    }

    /// True if any hop has failed and the graph needs repair.
    pub fn needs_repair(&self) -> bool {
        self.hops.iter().any(|h| h.status == HopStatus::Failed)
    }

    /// The output format delivered to the receiver (output of the final
    /// hop, or `None` for an empty graph — a direct, transcode-free fetch).
    pub fn delivered_format(&self) -> Option<MediaFormat> {
        self.hops.last().map(|h| h.output)
    }

    /// Total sustained work per second this graph charges each peer:
    /// `(peer, work_per_sec)` pairs, aggregated over hops.
    pub fn load_by_peer(&self) -> Vec<(NodeId, f64)> {
        let mut acc: Vec<(NodeId, f64)> = Vec::with_capacity(self.hops.len());
        for h in &self.hops {
            if let Some(entry) = acc.iter_mut().find(|(p, _)| *p == h.peer) {
                entry.1 += h.cost.work_per_sec;
            } else {
                acc.push((h.peer, h.cost.work_per_sec));
            }
        }
        acc
    }

    /// The edge ids of the underlying `G_r` path.
    pub fn path(&self) -> Vec<EdgeId> {
        self.hops.iter().map(|h| h.edge).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource_graph::ResourceGraph;

    fn graph_e1e2() -> (ResourceGraph, ServiceGraph) {
        let (gr, e) = ResourceGraph::figure1();
        let gs = ServiceGraph::from_path(
            TaskId::new(1),
            NodeId::new(10),
            NodeId::new(20),
            &gr,
            &[e[0], e[1]],
        );
        (gr, gs)
    }

    #[test]
    fn from_path_binds_edges() {
        let (gr, gs) = graph_e1e2();
        assert_eq!(gs.hops.len(), 2);
        assert_eq!(gs.hops[0].peer, NodeId::new(1));
        assert_eq!(gs.hops[1].peer, NodeId::new(2));
        assert_eq!(gs.hops[0].input, MediaFormat::paper_source());
        assert_eq!(gs.hops[1].output, MediaFormat::paper_target());
        assert_eq!(gs.delivered_format(), Some(MediaFormat::paper_target()));
        assert_eq!(gs.path(), vec![gs.hops[0].edge, gs.hops[1].edge]);
        let _ = gr;
    }

    #[test]
    fn participants_in_stream_order() {
        let (_, gs) = graph_e1e2();
        assert_eq!(
            gs.participants(),
            vec![
                NodeId::new(10),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(20)
            ]
        );
    }

    #[test]
    fn lifecycle_transitions() {
        let (_, mut gs) = graph_e1e2();
        assert!(!gs.is_fully_active());
        gs.activate();
        assert!(gs.is_fully_active());
        assert!(!gs.needs_repair());
        gs.complete();
        assert!(gs.hops.iter().all(|h| h.status == HopStatus::Completed));
    }

    #[test]
    fn peer_failure_marks_hops() {
        let (_, mut gs) = graph_e1e2();
        gs.activate();
        assert!(gs.uses_peer(NodeId::new(2)));
        assert!(!gs.uses_peer(NodeId::new(99)));
        let idx = gs.fail_peer(NodeId::new(2));
        assert_eq!(idx, Some(1));
        assert!(gs.needs_repair());
        assert!(!gs.is_fully_active());
        // Completed hops are not re-failed.
        let (_, mut gs2) = graph_e1e2();
        gs2.complete();
        assert_eq!(gs2.fail_peer(NodeId::new(2)), None);
    }

    #[test]
    fn load_by_peer_aggregates() {
        let (gr, e) = ResourceGraph::figure1();
        // Path e1,e4: peers 1 and 4; then add e6 also on peer 4.
        let gs = ServiceGraph::from_path(
            TaskId::new(2),
            NodeId::new(10),
            NodeId::new(20),
            &gr,
            &[e[0], e[3], e[5]],
        );
        let loads = gs.load_by_peer();
        assert_eq!(loads.len(), 2);
        let p4 = loads.iter().find(|(p, _)| *p == NodeId::new(4)).unwrap();
        assert!((p4.1 - (5.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_direct_fetch() {
        let (gr, _) = ResourceGraph::figure1();
        let gs =
            ServiceGraph::from_path(TaskId::new(3), NodeId::new(10), NodeId::new(20), &gr, &[]);
        assert_eq!(gs.delivered_format(), None);
        assert!(gs.is_fully_active()); // vacuously
        assert_eq!(gs.participants(), vec![NodeId::new(10), NodeId::new(20)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::media::{Codec, MediaFormat, Resolution};
    use crate::resource_graph::ResourceGraph;
    use crate::service::ServiceCost;
    use arm_util::ServiceId;
    use proptest::prelude::*;

    /// Builds a random chain graph and a service graph over all of it.
    fn chain(hops: usize, peers: &[u64]) -> (ResourceGraph, ServiceGraph) {
        let mut gr = ResourceGraph::new();
        let mut prev = gr.intern_state(MediaFormat::new(Codec::Mpeg2, Resolution::SVGA, 512));
        let mut path = Vec::new();
        for i in 0..hops {
            let next = gr.intern_state(MediaFormat::new(
                Codec::ALL[i % Codec::ALL.len()],
                Resolution::new(100 + i as u16, 100),
                500 - i as u32,
            ));
            let eid = gr.add_edge(
                prev,
                next,
                arm_util::NodeId::new(peers[i % peers.len()]),
                ServiceId::new(i as u64),
                ServiceCost {
                    work_per_sec: 1.0 + i as f64,
                    setup_work: 0.5,
                    bandwidth_kbps: 100,
                },
            );
            path.push(eid);
            prev = next;
        }
        let gs = ServiceGraph::from_path(
            arm_util::TaskId::new(1),
            arm_util::NodeId::new(1000),
            arm_util::NodeId::new(2000),
            &gr,
            &path,
        );
        (gr, gs)
    }

    proptest! {
        #[test]
        fn participants_cover_all_hop_peers(
            hops in 1usize..12,
            peers in proptest::collection::vec(0u64..6, 1..6),
        ) {
            let (_, gs) = chain(hops, &peers);
            let participants = gs.participants();
            prop_assert_eq!(participants[0], arm_util::NodeId::new(1000));
            prop_assert_eq!(*participants.last().unwrap(), arm_util::NodeId::new(2000));
            for h in &gs.hops {
                prop_assert!(participants.contains(&h.peer));
                prop_assert!(gs.uses_peer(h.peer));
            }
            // No duplicates.
            let mut sorted = participants.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), participants.len());
        }

        #[test]
        fn load_by_peer_conserves_total_work(
            hops in 1usize..12,
            peers in proptest::collection::vec(0u64..4, 1..4),
        ) {
            let (_, gs) = chain(hops, &peers);
            let per_peer: f64 = gs.load_by_peer().iter().map(|(_, w)| w).sum();
            let per_hop: f64 = gs.hops.iter().map(|h| h.cost.work_per_sec).sum();
            prop_assert!((per_peer - per_hop).abs() < 1e-9);
        }

        #[test]
        fn hop_formats_chain(hops in 1usize..12) {
            let (_, gs) = chain(hops, &[1, 2, 3]);
            for w in gs.hops.windows(2) {
                prop_assert_eq!(w[0].output, w[1].input);
            }
        }

        #[test]
        fn fail_peer_marks_exactly_that_peer(
            hops in 2usize..12,
            peers in proptest::collection::vec(0u64..4, 2..4),
            victim in 0u64..4,
        ) {
            let (_, mut gs) = chain(hops, &peers);
            let victim = arm_util::NodeId::new(victim);
            let had = gs.uses_peer(victim);
            let first = gs.fail_peer(victim);
            prop_assert_eq!(first.is_some(), had);
            for h in &gs.hops {
                if h.peer == victim {
                    prop_assert_eq!(h.status, HopStatus::Failed);
                } else {
                    prop_assert_ne!(h.status, HopStatus::Failed);
                }
            }
            prop_assert_eq!(gs.needs_repair(), had);
        }
    }
}
