//! Per-task QoS requirements.
//!
//! §3.3 of the paper: each task `t` carries `Deadline_t` ("the time
//! interval, starting at task initiation, within which the task should
//! complete, specified by the end user") and `Importance_t` ("the relative
//! importance of the application, specified by the end user"). The
//! transcoding example adds acceptable output formats and a bandwidth
//! floor. §4.5: users may *renegotiate* — relax deadlines or reduce
//! requested bitrate under congestion.

use crate::task::Importance;
use arm_util::SimDuration;
use serde::{Deserialize, Serialize};

/// QoS requirement set `q` handed to the allocation algorithm (Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosSpec {
    /// Relative deadline: the task must complete within this interval of
    /// its initiation.
    pub deadline: SimDuration,
    /// Relative importance; the local scheduler and overload-shedding use
    /// it to favour critical tasks.
    pub importance: Importance,
    /// Minimum end-to-end bandwidth the allocation must sustain, in kbps.
    /// Zero means "no bandwidth floor".
    pub min_bandwidth_kbps: u32,
    /// Upper bound on the number of service hops the user tolerates
    /// (each hop adds latency and jitter). `None` means unbounded.
    pub max_hops: Option<usize>,
}

impl QosSpec {
    /// A requirement set with the given deadline and defaults elsewhere.
    pub fn with_deadline(deadline: SimDuration) -> Self {
        Self {
            deadline,
            importance: Importance::default(),
            min_bandwidth_kbps: 0,
            max_hops: None,
        }
    }

    /// Builder: sets importance.
    pub fn importance(mut self, importance: Importance) -> Self {
        self.importance = importance;
        self
    }

    /// Builder: sets the bandwidth floor.
    pub fn min_bandwidth(mut self, kbps: u32) -> Self {
        self.min_bandwidth_kbps = kbps;
        self
    }

    /// Builder: bounds the hop count.
    pub fn max_hops(mut self, hops: usize) -> Self {
        self.max_hops = Some(hops);
        self
    }

    /// QoS renegotiation (§4.5): returns a relaxed copy with the deadline
    /// stretched by `factor ≥ 1` and the bandwidth floor scaled by
    /// `1/factor` — what a user does "to cope with congested networks".
    pub fn relaxed(&self, factor: f64) -> Self {
        assert!(factor >= 1.0, "relaxation factor must be >= 1");
        Self {
            deadline: self.deadline.mul_f64(factor),
            importance: self.importance,
            min_bandwidth_kbps: (self.min_bandwidth_kbps as f64 / factor) as u32,
            max_hops: self.max_hops,
        }
    }

    /// QoS tightening (§4.5): users "may increase the QoS parameters if
    /// they assume resources are abundant".
    pub fn tightened(&self, factor: f64) -> Self {
        assert!(factor >= 1.0, "tightening factor must be >= 1");
        Self {
            deadline: self.deadline.mul_f64(1.0 / factor),
            importance: self.importance,
            min_bandwidth_kbps: (self.min_bandwidth_kbps as f64 * factor) as u32,
            max_hops: self.max_hops,
        }
    }
}

impl Default for QosSpec {
    fn default() -> Self {
        Self::with_deadline(SimDuration::from_secs(5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let q = QosSpec::with_deadline(SimDuration::from_secs(2))
            .importance(Importance::new(7))
            .min_bandwidth(256)
            .max_hops(3);
        assert_eq!(q.deadline, SimDuration::from_secs(2));
        assert_eq!(q.importance.value(), 7);
        assert_eq!(q.min_bandwidth_kbps, 256);
        assert_eq!(q.max_hops, Some(3));
    }

    #[test]
    fn relaxation_stretches_deadline_and_lowers_bandwidth() {
        let q = QosSpec::with_deadline(SimDuration::from_secs(2)).min_bandwidth(100);
        let r = q.relaxed(2.0);
        assert_eq!(r.deadline, SimDuration::from_secs(4));
        assert_eq!(r.min_bandwidth_kbps, 50);
        assert_eq!(r.importance, q.importance);
    }

    #[test]
    fn tightening_is_inverse_direction() {
        let q = QosSpec::with_deadline(SimDuration::from_secs(4)).min_bandwidth(50);
        let t = q.tightened(2.0);
        assert_eq!(t.deadline, SimDuration::from_secs(2));
        assert_eq!(t.min_bandwidth_kbps, 100);
    }

    #[test]
    #[should_panic]
    fn relax_rejects_sub_one_factor() {
        QosSpec::default().relaxed(0.5);
    }

    #[test]
    fn default_is_sane() {
        let q = QosSpec::default();
        assert!(q.deadline > SimDuration::ZERO);
        assert_eq!(q.min_bandwidth_kbps, 0);
        assert_eq!(q.max_hops, None);
    }
}
