//! Golden-file pin of the JSONL trace export format (schema 2).
//!
//! The export format is a public interface: `arm trace` artifacts, CI
//! uploads and external tooling all consume it. This test compares a
//! representative export byte-for-byte against a committed fixture so any
//! change to the line schema — field names, ordering, the header, zero-field
//! omission — shows up as a reviewable fixture diff instead of drifting
//! silently. If you change the format deliberately, bump
//! [`TRACE_SCHEMA`](arm_telemetry::TRACE_SCHEMA), regenerate the fixture
//! (the failure message prints the new export), and document the bump in
//! DESIGN.md §11.

use arm_telemetry::{TraceEvent, TraceKind, TraceLog, TRACE_SCHEMA};
use arm_util::{DomainId, NodeId, SimTime, TaskId};

const GOLDEN: &str = include_str!("golden/trace_schema2.jsonl");

/// A fixed export exercising every serialisation feature of the format:
/// causal fields present and omitted, `parent` omitted while `trace_id`/
/// `span` are set, a `null` domain, a string payload, and the `hop` kind.
fn exemplar_events() -> Vec<TraceEvent> {
    let trace = 7u64;
    let span = |node: u64, counter: u64| (node << 32) | counter;
    vec![
        TraceEvent::new(
            SimTime::from_micros(1000),
            NodeId::new(3),
            Some(DomainId::new(1)),
            TraceKind::TaskPhase {
                task: TaskId::new(42),
                phase: arm_telemetry::TaskPhase::Submit,
            },
        )
        .causal(trace, span(3, 1), 0),
        TraceEvent::new(
            SimTime::from_micros(2000),
            NodeId::new(5),
            None,
            TraceKind::Hop {
                msg: "task_query".into(),
                from: NodeId::new(3),
            },
        )
        .causal(trace, span(5, 1), span(3, 1)),
        TraceEvent::new(
            SimTime::from_micros(3000),
            NodeId::new(5),
            Some(DomainId::new(1)),
            TraceKind::GossipRound { fanout: 4 },
        ),
        TraceEvent::new(
            SimTime::from_micros(4000),
            NodeId::new(5),
            Some(DomainId::new(1)),
            TraceKind::AdmissionRejected {
                task: TaskId::new(42),
                reason: "no_capacity".into(),
            },
        )
        .causal(trace, span(5, 2), span(3, 1)),
    ]
}

#[test]
fn export_matches_golden_fixture_byte_for_byte() {
    let mut log = TraceLog::new(16);
    for ev in exemplar_events() {
        log.push(ev);
    }
    let mut buf = Vec::new();
    log.write_jsonl(&mut buf).unwrap();
    let export = String::from_utf8(buf).unwrap();
    assert_eq!(
        export, GOLDEN,
        "JSONL trace export drifted from the schema-{TRACE_SCHEMA} golden \
         fixture; if intentional, bump TRACE_SCHEMA and regenerate \
         tests/golden/trace_schema2.jsonl with the export above"
    );
}

#[test]
fn golden_fixture_parses_back_to_the_same_events() {
    let parsed = TraceLog::parse_jsonl(GOLDEN).unwrap();
    assert_eq!(parsed, exemplar_events());
}

#[test]
fn golden_fixture_header_names_the_current_schema() {
    let header = GOLDEN.lines().next().unwrap();
    assert_eq!(header, format!("{{\"schema\":{TRACE_SCHEMA}}}"));
}
