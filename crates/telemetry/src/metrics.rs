//! Deterministic metrics registry: counters, gauges and fixed-bucket
//! histograms keyed by a metric name plus `(peer, domain, kind)` labels.
//!
//! All storage is `BTreeMap`-ordered so iteration, snapshots and exports are
//! byte-for-byte reproducible for a given run. Values carry *simulation*
//! quantities only — no wall-clock time ever enters a metric value.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use arm_util::{DomainId, NodeId};

/// Default latency buckets, in seconds: 1 ms .. 30 s, roughly log-spaced.
pub const LATENCY_BUCKETS_SECS: [f64; 14] = [
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
];

/// Small bucket set for counts-per-round style distributions (0 .. 256).
pub const COUNT_BUCKETS: [f64; 9] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// The label set attached to every metric: which peer, which domain, and a
/// free-form `kind` discriminator (message kind, phase name, reject reason...).
/// All parts are optional; omitted parts simply don't appear in the rendered
/// key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Labels {
    /// Peer the observation belongs to, if attributable to one.
    pub peer: Option<NodeId>,
    /// Domain the observation belongs to, if attributable to one.
    pub domain: Option<DomainId>,
    /// Free-form discriminator (message kind, task phase, reason, ...).
    pub kind: Option<&'static str>,
}

impl Labels {
    /// No labels at all — a global series.
    pub const NONE: Labels = Labels {
        peer: None,
        domain: None,
        kind: None,
    };

    /// A `kind`-only label set.
    pub fn kind(kind: &'static str) -> Labels {
        Labels {
            kind: Some(kind),
            ..Labels::NONE
        }
    }

    /// A peer-only label set.
    pub fn peer(peer: NodeId) -> Labels {
        Labels {
            peer: Some(peer),
            ..Labels::NONE
        }
    }

    /// A domain-only label set.
    pub fn domain(domain: DomainId) -> Labels {
        Labels {
            domain: Some(domain),
            ..Labels::NONE
        }
    }

    /// Adds/replaces the peer label.
    pub fn with_peer(mut self, peer: NodeId) -> Labels {
        self.peer = Some(peer);
        self
    }

    /// Adds/replaces the domain label.
    pub fn with_domain(mut self, domain: DomainId) -> Labels {
        self.domain = Some(domain);
        self
    }

    /// Adds/replaces the kind label.
    pub fn with_kind(mut self, kind: &'static str) -> Labels {
        self.kind = Some(kind);
        self
    }
}

/// A metric series identity: name plus labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `"task_phase_seconds"`.
    pub name: &'static str,
    /// Label set distinguishing series under the same name.
    pub labels: Labels,
}

impl MetricKey {
    /// Renders `name{peer=n3,domain=d1,kind="gossip"}` (label parts that are
    /// unset are omitted; a fully unlabelled key renders as just `name`).
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(p) = self.labels.peer {
            parts.push(format!("peer={p}"));
        }
        if let Some(d) = self.labels.domain {
            parts.push(format!("domain={d}"));
        }
        if let Some(k) = self.labels.kind {
            parts.push(format!("kind=\"{k}\""));
        }
        if parts.is_empty() {
            self.name.to_string()
        } else {
            format!("{}{{{}}}", self.name, parts.join(","))
        }
    }
}

/// A histogram over fixed, caller-supplied bucket upper bounds.
///
/// Buckets are half-open `(prev, bound]` ranges (Prometheus `le` semantics);
/// values above the last bound land in an implicit overflow bucket. Fixed
/// bounds make histograms from different runs of the same scenario mergeable
/// bucket-by-bucket, which the log-scaled `arm_util::stats::Histogram` with
/// its data-dependent origin cannot guarantee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedHistogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` counters; the last one is the overflow bucket.
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl FixedHistogram {
    /// Creates an empty histogram over the given ascending upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        FixedHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.total += 1;
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all observed values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the upper
    /// bound of the bucket the rank falls into. Returns `None` when empty,
    /// `f64::INFINITY` when the rank lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }

    /// Adds another histogram's observations into this one. Panics if the
    /// bucket bounds differ — merging is only meaningful across identical
    /// layouts (e.g. repetitions of the same scenario).
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.total += other.total;
    }
}

/// The in-memory registry all instrumented components write into.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, FixedHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a counter by 1.
    pub fn inc(&mut self, name: &'static str, labels: Labels) {
        self.add(name, labels, 1);
    }

    /// Increments a counter by `delta`.
    pub fn add(&mut self, name: &'static str, labels: Labels, delta: u64) {
        *self.counters.entry(MetricKey { name, labels }).or_insert(0) += delta;
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, labels: Labels, value: f64) {
        // arm-lint: allow(unbounded-growth) -- keyed by the recorder's fixed metric-name x label vocabulary
        self.gauges.insert(MetricKey { name, labels }, value);
    }

    /// Records `value` into the histogram series, creating it over `bounds`
    /// on first use.
    pub fn observe(&mut self, name: &'static str, labels: Labels, bounds: &[f64], value: f64) {
        self.histograms
            .entry(MetricKey { name, labels })
            .or_insert_with(|| FixedHistogram::new(bounds))
            .observe(value);
    }

    /// Merges a pre-aggregated histogram into the series, creating it (with
    /// the incoming bounds) on first use. Components that batch observations
    /// locally — e.g. the per-message-kind handle profiler — flush through
    /// this at snapshot time instead of paying a map lookup per observation.
    pub fn merge_histogram(&mut self, name: &'static str, labels: Labels, hist: &FixedHistogram) {
        self.histograms
            .entry(MetricKey { name, labels })
            .and_modify(|h| h.merge(hist))
            .or_insert_with(|| hist.clone());
    }

    /// Reads a counter (0 when the series doesn't exist).
    pub fn counter(&self, name: &'static str, labels: Labels) -> u64 {
        self.counters
            .get(&MetricKey { name, labels })
            .copied()
            .unwrap_or(0)
    }

    /// Reads a gauge, if the series exists.
    pub fn gauge(&self, name: &'static str, labels: Labels) -> Option<f64> {
        self.gauges.get(&MetricKey { name, labels }).copied()
    }

    /// Reads a histogram series, if it exists.
    pub fn histogram(&self, name: &'static str, labels: Labels) -> Option<&FixedHistogram> {
        self.histograms.get(&MetricKey { name, labels })
    }

    /// Iterates all counter series in key order. Cheap (no rendering) —
    /// this is what the pulse sampler sweeps every tick.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// Iterates all gauge series in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, f64)> {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// Iterates all histogram series in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &FixedHistogram)> {
        self.histograms.iter()
    }

    /// Freezes the registry into a serialisable, mergeable snapshot with
    /// rendered string keys.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| CounterEntry {
                    key: k.render(),
                    value: v,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, &v)| GaugeEntry {
                    key: k.render(),
                    value: v,
                    samples: 1,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| HistogramEntry {
                    key: k.render(),
                    histogram: h.clone(),
                })
                .collect(),
        }
    }
}

/// One exported counter series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Rendered `name{labels}` key.
    pub key: String,
    /// Accumulated count.
    pub value: u64,
}

/// One exported gauge series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Rendered `name{labels}` key.
    pub key: String,
    /// Gauge value; after a merge, the mean across merged snapshots.
    pub value: f64,
    /// How many snapshots contributed to `value` (for merge averaging).
    pub samples: u64,
}

/// One exported histogram series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Rendered `name{labels}` key.
    pub key: String,
    /// The bucketed distribution.
    pub histogram: FixedHistogram,
}

/// A frozen, serialisable view of a [`MetricsRegistry`].
///
/// Snapshots from repeated runs of the same scenario merge entry-wise:
/// counters and histogram buckets add, gauges average.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counter series, sorted by key.
    pub counters: Vec<CounterEntry>,
    /// All gauge series, sorted by key.
    pub gauges: Vec<GaugeEntry>,
    /// All histogram series, sorted by key.
    pub histograms: Vec<HistogramEntry>,
}

impl MetricsSnapshot {
    /// Looks up a counter by its rendered key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.iter().find(|e| e.key == key).map(|e| e.value)
    }

    /// Looks up a histogram by its rendered key.
    pub fn histogram(&self, key: &str) -> Option<&FixedHistogram> {
        self.histograms
            .iter()
            .find(|e| e.key == key)
            .map(|e| &e.histogram)
    }

    /// Merges `other` into `self`: counters add, histograms merge
    /// bucket-wise (when bounds agree; mismatched layouts keep `self`'s),
    /// gauges accumulate a running mean. Series present in only one side are
    /// kept as-is.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for e in &other.counters {
            match self.counters.iter_mut().find(|m| m.key == e.key) {
                Some(m) => m.value += e.value,
                // arm-lint: allow(unbounded-growth) -- per-scrape fold; the snapshot is dropped after rendering
                None => self.counters.push(e.clone()),
            }
        }
        for e in &other.gauges {
            match self.gauges.iter_mut().find(|m| m.key == e.key) {
                Some(m) => {
                    let total = m.value * m.samples as f64 + e.value * e.samples as f64;
                    m.samples += e.samples;
                    m.value = total / m.samples as f64;
                }
                // arm-lint: allow(unbounded-growth) -- per-scrape fold; the snapshot is dropped after rendering
                None => self.gauges.push(e.clone()),
            }
        }
        for e in &other.histograms {
            match self.histograms.iter_mut().find(|m| m.key == e.key) {
                Some(m) if m.histogram.bounds() == e.histogram.bounds() => {
                    m.histogram.merge(&e.histogram);
                }
                Some(_) => {}
                // arm-lint: allow(unbounded-growth) -- per-scrape fold; the snapshot is dropped after rendering
                None => self.histograms.push(e.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.key.cmp(&b.key));
        self.gauges.sort_by(|a, b| a.key.cmp(&b.key));
        self.histograms.sort_by(|a, b| a.key.cmp(&b.key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_le_inclusive() {
        let mut h = FixedHistogram::new(&[1.0, 2.0, 4.0]);
        h.observe(0.5); // bucket 0
        h.observe(1.0); // bucket 0 (le)
        h.observe(1.0001); // bucket 1
        h.observe(2.0); // bucket 1
        h.observe(4.0); // bucket 2
        h.observe(100.0); // overflow
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn quantile_returns_bucket_upper_bound() {
        let mut h = FixedHistogram::new(&[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..90 {
            h.observe(0.5);
        }
        for _ in 0..10 {
            h.observe(3.0);
        }
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.quantile(0.95), Some(4.0));
        h.observe(1e9);
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let mut a = FixedHistogram::new(&LATENCY_BUCKETS_SECS);
        let mut b = FixedHistogram::new(&LATENCY_BUCKETS_SECS);
        a.observe(0.002);
        b.observe(0.002);
        b.observe(7.0);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert!((a.sum() - 7.004).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bounds differ")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = FixedHistogram::new(&[1.0]);
        let b = FixedHistogram::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    fn key_rendering() {
        let key = MetricKey {
            name: "messages_sent",
            labels: Labels::kind("gossip").with_peer(NodeId::new(3)),
        };
        assert_eq!(key.render(), "messages_sent{peer=n3,kind=\"gossip\"}");
        let bare = MetricKey {
            name: "events",
            labels: Labels::NONE,
        };
        assert_eq!(bare.render(), "events");
    }

    #[test]
    fn registry_counters_and_gauges() {
        let mut reg = MetricsRegistry::new();
        reg.inc("x", Labels::NONE);
        reg.add("x", Labels::NONE, 4);
        reg.inc("x", Labels::kind("a"));
        assert_eq!(reg.counter("x", Labels::NONE), 5);
        assert_eq!(reg.counter("x", Labels::kind("a")), 1);
        assert_eq!(reg.counter("y", Labels::NONE), 0);
        reg.set_gauge("g", Labels::NONE, 2.5);
        reg.set_gauge("g", Labels::NONE, 3.5);
        assert_eq!(reg.gauge("g", Labels::NONE), Some(3.5));
    }

    #[test]
    fn snapshot_merge_semantics() {
        let mut a = MetricsRegistry::new();
        a.inc("c", Labels::NONE);
        a.set_gauge("g", Labels::NONE, 1.0);
        a.observe("h", Labels::NONE, &[1.0, 2.0], 0.5);
        let mut b = MetricsRegistry::new();
        b.add("c", Labels::NONE, 2);
        b.set_gauge("g", Labels::NONE, 3.0);
        b.observe("h", Labels::NONE, &[1.0, 2.0], 1.5);
        b.inc("only_b", Labels::NONE);

        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("c"), Some(3));
        assert_eq!(snap.counter("only_b"), Some(1));
        let g = snap.gauges.iter().find(|e| e.key == "g").unwrap();
        assert!((g.value - 2.0).abs() < 1e-12);
        assert_eq!(snap.histogram("h").unwrap().total(), 2);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut reg = MetricsRegistry::new();
        reg.inc("c", Labels::kind("k"));
        reg.observe("h", Labels::NONE, &[1.0, 2.0], 1.5);
        let snap = reg.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back.counter("c{kind=\"k\"}"), Some(1));
        assert_eq!(back.histogram("h").unwrap(), snap.histogram("h").unwrap());
    }
}
