//! Retained time series: the `arm-pulse` sampling plane.
//!
//! A [`SeriesStore`] periodically sweeps a [`MetricsRegistry`] and appends
//! one point per metric per tick into bounded per-series rings: counters
//! and gauges verbatim, histograms as their p50/p99 quantile estimates.
//! Ticks are *driver* time — deterministic sim-time in the DES harness,
//! wall-interval virtual time on live nodes — so two identically seeded
//! simulation runs produce byte-identical series.
//!
//! Retention is cursor-addressed: every tick gets a monotonically
//! increasing sample sequence number, rings evict from the front when
//! full, and [`SeriesStore::collect_since`] exports everything at or after
//! a cursor as a delta-encoded [`SeriesBatch`] — the incremental scrape
//! payload the `StatusRequest`/`StatusReport` plane ships to observers
//! (`arm watch`), so polling a cluster never re-sends history.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

use arm_util::SimTime;

use crate::metrics::{MetricKey, MetricsRegistry};

/// Which aspect of a metric a series tracks. Counters and gauges have one
/// series each; histograms contribute one series per tracked quantile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeriesKind {
    /// Cumulative counter value.
    Counter,
    /// Last-written gauge value.
    Gauge,
    /// Histogram median (bucket-upper-bound estimate).
    P50,
    /// Histogram 99th percentile (bucket-upper-bound estimate).
    P99,
}

impl SeriesKind {
    /// Stable lowercase name, used as the wire discriminator.
    pub fn name(&self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::P50 => "p50",
            SeriesKind::P99 => "p99",
        }
    }
}

/// One bounded per-metric ring of sampled values. Values are contiguous:
/// the `i`-th retained value belongs to sample seq `first_seq + i` (series
/// born mid-run simply start at a later `first_seq`; front eviction
/// advances it).
#[derive(Debug, Clone)]
struct SeriesRing {
    first_seq: u64,
    values: VecDeque<f64>,
}

/// The in-memory retained-series store of one node (or one simulation).
#[derive(Debug, Clone)]
pub struct SeriesStore {
    capacity: usize,
    next_seq: u64,
    /// Tick timestamps, aligned so `ticks[i]` is the time of sample seq
    /// `next_seq - ticks.len() + i`.
    ticks: VecDeque<SimTime>,
    series: BTreeMap<(MetricKey, SeriesKind), SeriesRing>,
}

impl SeriesStore {
    /// Default per-series retention (samples).
    pub const DEFAULT_CAPACITY: usize = 512;

    /// Creates a store retaining at most `capacity` samples per series.
    pub fn new(capacity: usize) -> Self {
        SeriesStore {
            capacity: capacity.max(2),
            next_seq: 0,
            ticks: VecDeque::new(),
            series: BTreeMap::new(),
        }
    }

    /// The cursor one past the newest retained sample — what an observer
    /// should send next to receive only new points.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of sample ticks taken so far (including evicted ones).
    pub fn samples_taken(&self) -> u64 {
        self.next_seq
    }

    /// Number of distinct series currently retained.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Takes one sample tick at `now`: appends the current value of every
    /// registered counter and gauge, and the p50/p99 of every histogram.
    pub fn sample(&mut self, now: SimTime, metrics: &MetricsRegistry) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.ticks.len() == self.capacity {
            self.ticks.pop_front();
        }
        self.ticks.push_back(now);
        for (key, value) in metrics.counters() {
            self.record(*key, SeriesKind::Counter, seq, value as f64);
        }
        for (key, value) in metrics.gauges() {
            self.record(*key, SeriesKind::Gauge, seq, value);
        }
        for (key, hist) in metrics.histograms() {
            // Overflow-bucket quantiles report the largest finite bound:
            // the estimate stays plottable and JSON-serialisable.
            let cap = hist.bounds().last().copied().unwrap_or(0.0);
            let q = |q: f64| hist.quantile(q).map_or(0.0, |v| v.min(cap));
            self.record(*key, SeriesKind::P50, seq, q(0.5));
            self.record(*key, SeriesKind::P99, seq, q(0.99));
        }
    }

    fn record(&mut self, key: MetricKey, kind: SeriesKind, seq: u64, value: f64) {
        let ring = self.series.entry((key, kind)).or_insert(SeriesRing {
            first_seq: seq,
            values: VecDeque::new(),
        });
        if ring.values.len() == self.capacity {
            ring.values.pop_front();
            ring.first_seq += 1;
        }
        debug_assert_eq!(
            ring.first_seq + ring.values.len() as u64,
            seq,
            "series sampled out of sequence"
        );
        ring.values.push_back(value);
    }

    /// The retained values of one series, newest last, capped to the last
    /// `window` samples. Used by the health evaluator and tests.
    pub fn tail(&self, key: &MetricKey, kind: SeriesKind, window: usize) -> Vec<f64> {
        match self.series.get(&(*key, kind)) {
            Some(ring) => {
                let skip = ring.values.len().saturating_sub(window);
                ring.values.iter().skip(skip).copied().collect()
            }
            None => Vec::new(),
        }
    }

    /// Sums the last `window` samples across every series whose metric
    /// *name* matches, aligned by sample seq (a series born mid-window
    /// contributes 0 before its birth). Returns newest-last, one entry per
    /// retained tick in the window; empty when no series matches.
    pub fn window_sum(&self, name: &str, kind: SeriesKind, window: usize) -> Vec<f64> {
        let newest = match self.next_seq.checked_sub(1) {
            Some(n) => n,
            None => return Vec::new(),
        };
        let retained = self.ticks.len().min(window);
        let start = newest + 1 - retained as u64;
        let mut out = vec![0.0; retained];
        let mut matched = false;
        for ((key, k), ring) in &self.series {
            if *k != kind || key.name != name {
                continue;
            }
            matched = true;
            for (i, slot) in out.iter_mut().enumerate() {
                let seq = start + i as u64;
                if seq >= ring.first_seq {
                    let idx = (seq - ring.first_seq) as usize;
                    if let Some(v) = ring.values.get(idx) {
                        *slot += v;
                    }
                }
            }
        }
        if matched {
            out
        } else {
            Vec::new()
        }
    }

    /// Exports every sample at or after `cursor` as a delta-encoded batch.
    /// `collect_since(0)` dumps the full retained history;
    /// `collect_since(batch.next_cursor)` of a previous batch returns only
    /// what was sampled since — the incremental scrape the wire plane uses.
    pub fn collect_since(&self, cursor: u64) -> SeriesBatch {
        let retained_start = self.next_seq - self.ticks.len() as u64;
        let start = cursor.max(retained_start);
        if start >= self.next_seq {
            return SeriesBatch {
                next_cursor: self.next_seq,
                ..SeriesBatch::default()
            };
        }
        let tick_off = (start - retained_start) as usize;
        let ticks: Vec<SimTime> = self.ticks.iter().skip(tick_off).copied().collect();
        let first_tick_us = ticks.first().map_or(0, |t| t.as_micros());
        let tick_deltas_us = ticks
            .windows(2)
            .map(|w| w[1].as_micros() - w[0].as_micros())
            .collect();
        let mut series = Vec::new();
        for ((key, kind), ring) in &self.series {
            let s_start = start.max(ring.first_seq);
            let end = ring.first_seq + ring.values.len() as u64;
            if s_start >= end {
                continue;
            }
            let off = (s_start - ring.first_seq) as usize;
            let vals: Vec<f64> = ring.values.iter().skip(off).copied().collect();
            series.push(SeriesSlice {
                key: key.render(),
                kind: kind.name().to_string(),
                start_seq: s_start,
                first: vals[0],
                deltas: vals.windows(2).map(|w| w[1] - w[0]).collect(),
            });
        }
        SeriesBatch {
            next_cursor: self.next_seq,
            start_seq: start,
            first_tick_us,
            tick_deltas_us,
            series,
        }
    }
}

impl Default for SeriesStore {
    fn default() -> Self {
        SeriesStore::new(Self::DEFAULT_CAPACITY)
    }
}

/// One series' worth of points in a batch: delta-encoded from `first`, so
/// monotone counters serialise compactly. `start_seq` anchors the slice on
/// the batch's shared tick axis (series born mid-batch start later).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSlice {
    /// Rendered `name{labels}` metric key.
    pub key: String,
    /// `"counter"`, `"gauge"`, `"p50"` or `"p99"`.
    pub kind: String,
    /// Sample seq of `first`.
    pub start_seq: u64,
    /// First value of the slice.
    pub first: f64,
    /// Successive differences; `len + 1` points total.
    pub deltas: Vec<f64>,
}

impl SeriesSlice {
    /// Decodes the slice back into `(seq, value)` points.
    pub fn points(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity(self.deltas.len() + 1);
        let mut v = self.first;
        out.push((self.start_seq, v));
        for (i, d) in self.deltas.iter().enumerate() {
            v += d;
            out.push((self.start_seq + 1 + i as u64, v));
        }
        out
    }
}

/// A cursor-addressed export of retained series: the scrape payload.
///
/// The default (empty) batch is what pre-pulse nodes implicitly answer —
/// observers treat it as "no series support, nothing new".
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SeriesBatch {
    /// Cursor to send next for an incremental follow-up scrape.
    pub next_cursor: u64,
    /// Sample seq of the first included tick.
    pub start_seq: u64,
    /// Timestamp (µs of driver time) of the first included tick.
    pub first_tick_us: u64,
    /// Deltas between consecutive tick timestamps (µs).
    pub tick_deltas_us: Vec<u64>,
    /// Per-series point slices, sorted by rendered key then kind.
    pub series: Vec<SeriesSlice>,
}

impl SeriesBatch {
    /// Whether the batch carries no points at all.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Number of sample ticks included.
    pub fn tick_count(&self) -> usize {
        if self.series.is_empty() {
            0
        } else {
            self.tick_deltas_us.len() + 1
        }
    }

    /// Total points across all series.
    pub fn point_count(&self) -> usize {
        self.series.iter().map(|s| s.deltas.len() + 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Labels;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn samples_accumulate_and_export_delta_encoded() {
        let mut reg = MetricsRegistry::new();
        let mut store = SeriesStore::new(16);
        for i in 0..4u64 {
            reg.add("msgs", Labels::NONE, 10);
            reg.set_gauge("load", Labels::NONE, i as f64 * 0.5);
            store.sample(t(i), &reg);
        }
        let batch = store.collect_since(0);
        assert_eq!(batch.next_cursor, 4);
        assert_eq!(batch.tick_count(), 4);
        let msgs = batch.series.iter().find(|s| s.key == "msgs").unwrap();
        assert_eq!(msgs.kind, "counter");
        assert_eq!(msgs.first, 10.0);
        assert_eq!(msgs.deltas, vec![10.0, 10.0, 10.0]);
        assert_eq!(
            msgs.points(),
            vec![(0, 10.0), (1, 20.0), (2, 30.0), (3, 40.0)]
        );
        let load = batch.series.iter().find(|s| s.key == "load").unwrap();
        assert_eq!(load.kind, "gauge");
        assert_eq!(load.points().last(), Some(&(3, 1.5)));
    }

    #[test]
    fn incremental_scrape_returns_only_new_points() {
        let mut reg = MetricsRegistry::new();
        let mut store = SeriesStore::new(16);
        reg.inc("c", Labels::NONE);
        store.sample(t(0), &reg);
        let first = store.collect_since(0);
        assert_eq!(first.point_count(), 1);
        let none = store.collect_since(first.next_cursor);
        assert!(none.is_empty());
        assert_eq!(none.next_cursor, 1);
        reg.inc("c", Labels::NONE);
        store.sample(t(1), &reg);
        store.sample(t(2), &reg);
        let more = store.collect_since(first.next_cursor);
        assert_eq!(more.start_seq, 1);
        assert_eq!(more.point_count(), 2);
        assert_eq!(more.series[0].points(), vec![(1, 2.0), (2, 2.0)]);
    }

    #[test]
    fn rings_evict_from_the_front_and_cursors_stay_valid() {
        let mut reg = MetricsRegistry::new();
        let mut store = SeriesStore::new(4);
        for i in 0..10u64 {
            reg.set_gauge("g", Labels::NONE, i as f64);
            store.sample(t(i), &reg);
        }
        // Only the last 4 samples survive; an old cursor clamps forward.
        let batch = store.collect_since(0);
        assert_eq!(batch.start_seq, 6);
        assert_eq!(
            batch.series[0].points(),
            vec![(6, 6.0), (7, 7.0), (8, 8.0), (9, 9.0)]
        );
        assert_eq!(batch.first_tick_us, t(6).as_micros());
    }

    #[test]
    fn series_born_mid_run_anchor_at_their_first_sample() {
        let mut reg = MetricsRegistry::new();
        let mut store = SeriesStore::new(16);
        store.sample(t(0), &reg);
        store.sample(t(1), &reg);
        reg.inc("late", Labels::kind("x"));
        store.sample(t(2), &reg);
        let batch = store.collect_since(0);
        let late = batch
            .series
            .iter()
            .find(|s| s.key.contains("late"))
            .unwrap();
        assert_eq!(late.start_seq, 2);
        assert_eq!(late.points(), vec![(2, 1.0)]);
    }

    #[test]
    fn histograms_sample_p50_and_p99() {
        let mut reg = MetricsRegistry::new();
        let mut store = SeriesStore::new(8);
        for _ in 0..50 {
            reg.observe("lat", Labels::NONE, &[1.0, 2.0, 4.0], 0.5);
        }
        for _ in 0..50 {
            reg.observe("lat", Labels::NONE, &[1.0, 2.0, 4.0], 100.0);
        }
        store.sample(t(0), &reg);
        let batch = store.collect_since(0);
        let p50 = batch
            .series
            .iter()
            .find(|s| s.key == "lat" && s.kind == "p50")
            .unwrap();
        assert_eq!(p50.first, 1.0);
        let p99 = batch
            .series
            .iter()
            .find(|s| s.key == "lat" && s.kind == "p99")
            .unwrap();
        // The rank lands in the overflow bucket; clamped to the last bound.
        assert_eq!(p99.first, 4.0);
    }

    #[test]
    fn window_sum_aligns_across_labelled_series() {
        let mut reg = MetricsRegistry::new();
        let mut store = SeriesStore::new(8);
        reg.add("hits", Labels::kind("a"), 1);
        store.sample(t(0), &reg);
        reg.add("hits", Labels::kind("b"), 5);
        store.sample(t(1), &reg);
        let sums = store.window_sum("hits", SeriesKind::Counter, 8);
        assert_eq!(sums, vec![1.0, 6.0]);
        assert!(store
            .window_sum("absent", SeriesKind::Counter, 8)
            .is_empty());
    }

    #[test]
    fn batches_roundtrip_through_json() {
        let mut reg = MetricsRegistry::new();
        let mut store = SeriesStore::new(8);
        reg.inc("c", Labels::kind("k"));
        reg.set_gauge("g", Labels::NONE, 2.5);
        store.sample(t(0), &reg);
        store.sample(t(1), &reg);
        let batch = store.collect_since(0);
        let text = serde_json::to_string(&batch).unwrap();
        let back: SeriesBatch = serde_json::from_str(&text).unwrap();
        assert_eq!(back, batch);
    }
}
