//! Task-lifecycle spans.
//!
//! A task's journey through the middleware decomposes into phases:
//!
//! ```text
//! Submit → Query → Allocation → Composition → Stream → Terminal
//! ```
//!
//! [`SpanTracker`] measures the simulated time spent in each phase and feeds
//! per-phase latency histograms (`task_phase_seconds{kind=<phase>}`) plus an
//! end-to-end histogram (`task_total_seconds{kind=<outcome>}`) in a
//! [`MetricsRegistry`]. Phases may legitimately be skipped (a task rejected
//! at admission never reaches `Allocation`); the tracker only records phases
//! actually entered.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

use arm_util::{SimTime, TaskId};

use crate::metrics::{FixedHistogram, Labels, MetricsRegistry, LATENCY_BUCKETS_SECS};

/// How many closed task ids the tracker remembers to suppress duplicate or
/// out-of-order terminal events (FIFO-bounded so long runs can't grow it).
const CLOSED_MEMORY: usize = 16_384;

/// Histogram name for time spent inside each phase.
pub const PHASE_METRIC: &str = "task_phase_seconds";
/// Histogram name for end-to-end task latency, labelled by outcome.
pub const TOTAL_METRIC: &str = "task_total_seconds";

/// Number of [`TaskPhase`] variants (array-index upper bound).
const PHASE_COUNT: usize = 6;

/// The lifecycle phases of a task, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TaskPhase {
    /// Submitted by the application; waiting to be picked up.
    Submit,
    /// The originating peer's RM is being queried for resources.
    Query,
    /// Distributed resource allocation (the BFS over domains) is running.
    Allocation,
    /// The service path is being composed across the chosen peers.
    Composition,
    /// The application session is streaming / executing.
    Stream,
    /// Finished: completed, rejected or failed.
    Terminal,
}

impl TaskPhase {
    /// Stable snake_case name, used as the `kind` label.
    pub fn name(self) -> &'static str {
        match self {
            TaskPhase::Submit => "submit",
            TaskPhase::Query => "query",
            TaskPhase::Allocation => "allocation",
            TaskPhase::Composition => "composition",
            TaskPhase::Stream => "stream",
            TaskPhase::Terminal => "terminal",
        }
    }
}

#[derive(Debug, Clone)]
struct OpenSpan {
    started: SimTime,
    phase: TaskPhase,
    phase_started: SimTime,
}

/// Tracks open task spans and records phase/total latencies on transition.
///
/// Terminal events are deduplicated: once a task's span is closed, further
/// terminal (or phase) events for the same task id are dropped instead of
/// double-counting the histograms — distributed drivers can deliver the
/// same outcome twice or out of order. A fresh [`SpanTracker::submit`]
/// clears the memory (a genuine task restart reopens the span).
///
/// Latency observations accumulate in tracker-local fixed histograms — a
/// phase transition is an array index plus a bucket scan, never a registry
/// map lookup — and reach a [`MetricsRegistry`] only when
/// [`SpanTracker::flush_into`] folds them in (drivers call it once per
/// snapshot, not per observation).
#[derive(Debug, Clone, Default)]
pub struct SpanTracker {
    /// In-flight spans, most-recently-touched first. A task's phase events
    /// arrive in bursts and only a handful of tasks are in flight at once,
    /// so a move-to-front vec resolves the common lookup at index 0.
    open: Vec<(TaskId, OpenSpan)>,
    /// Recently closed task ids, insertion-ordered for FIFO eviction.
    closed_fifo: VecDeque<TaskId>,
    closed: BTreeSet<TaskId>,
    /// Per-phase residence-time histograms, indexed by [`TaskPhase`].
    phase_hist: [Option<FixedHistogram>; PHASE_COUNT],
    /// End-to-end latency histograms, keyed by outcome label. Outcome
    /// labels come from a handful of `&'static str` call sites, so a
    /// pointer-first linear scan beats any map.
    total_hist: Vec<(&'static str, FixedHistogram)>,
}

impl SpanTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks currently in flight.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Iterates over the in-flight spans: `(task, current phase, opened
    /// at)`, ordered by task id.
    pub fn open_spans(&self) -> impl Iterator<Item = (TaskId, TaskPhase, SimTime)> + '_ {
        let mut spans: Vec<_> = self
            .open
            .iter()
            .map(|(t, s)| (*t, s.phase, s.started))
            .collect();
        spans.sort_by_key(|(t, _, _)| *t);
        spans.into_iter()
    }

    /// Index of `task` in the open table, moved to the front on a hit.
    #[inline]
    fn promote(&mut self, task: TaskId) -> Option<usize> {
        let i = self.open.iter().position(|(t, _)| *t == task)?;
        self.open.swap(0, i);
        Some(0)
    }

    /// Opens a span for `task` in the [`TaskPhase::Submit`] phase.
    /// Re-submitting an in-flight task restarts its span, and re-submitting
    /// a finished task id reopens it (clearing the duplicate-terminal
    /// suppression for it).
    pub fn submit(&mut self, task: TaskId, now: SimTime) {
        if self.closed.remove(&task) {
            self.closed_fifo.retain(|t| *t != task);
        }
        let span = OpenSpan {
            started: now,
            phase: TaskPhase::Submit,
            phase_started: now,
        };
        match self.promote(task) {
            Some(i) => self.open[i].1 = span,
            None => self.open.insert(0, (task, span)),
        }
    }

    fn remember_closed(&mut self, task: TaskId) {
        if self.closed.insert(task) {
            self.closed_fifo.push_back(task);
            if self.closed_fifo.len() > CLOSED_MEMORY {
                if let Some(evicted) = self.closed_fifo.pop_front() {
                    self.closed.remove(&evicted);
                }
            }
        }
    }

    /// Moves `task` into `phase`, recording the time spent in the phase it
    /// is leaving. Unknown tasks, no-op transitions (already in `phase`)
    /// and out-of-order transitions (to an *earlier* phase than the current
    /// one — merged distributed streams deliver with arbitrary skew) are
    /// all ignored, so emitters don't need to dedup.
    pub fn advance(&mut self, task: TaskId, phase: TaskPhase, now: SimTime) {
        let Some(i) = self.promote(task) else {
            return;
        };
        let span = &mut self.open[i].1;
        if phase <= span.phase {
            return;
        }
        let spent = now.saturating_since(span.phase_started).as_secs_f64();
        let leaving = span.phase;
        span.phase = phase;
        span.phase_started = now;
        self.phase_hist[leaving as usize]
            .get_or_insert_with(|| FixedHistogram::new(&LATENCY_BUCKETS_SECS))
            .observe(spent);
    }

    /// Closes `task`'s span with the given outcome label (`"on_time"`,
    /// `"late"`, `"rejected"`, `"failed"`, ...): records the final phase's
    /// residence time and the end-to-end latency. Unknown tasks and
    /// duplicate terminals (the task already finished) are ignored.
    pub fn finish(&mut self, task: TaskId, outcome: &'static str, now: SimTime) {
        let Some(i) = self.open.iter().position(|(t, _)| *t == task) else {
            return;
        };
        let (_, span) = self.open.swap_remove(i);
        self.remember_closed(task);
        let spent = now.saturating_since(span.phase_started).as_secs_f64();
        self.phase_hist[span.phase as usize]
            .get_or_insert_with(|| FixedHistogram::new(&LATENCY_BUCKETS_SECS))
            .observe(spent);
        let total = now.saturating_since(span.started).as_secs_f64();
        let hist = match self.total_hist.iter_mut().position(|(k, _)| {
            std::ptr::eq(*k as *const str, outcome as *const str) || *k == outcome
        }) {
            Some(i) => &mut self.total_hist[i].1,
            None => {
                let fresh = FixedHistogram::new(&LATENCY_BUCKETS_SECS);
                // arm-lint: allow(unbounded-growth) -- keyed by the small static outcome-name vocabulary
                self.total_hist.push((outcome, fresh));
                &mut self.total_hist.last_mut().expect("just pushed").1
            }
        };
        hist.observe(total);
    }

    /// Folds the buffered latency histograms into `registry` as
    /// `task_phase_seconds{kind=<phase>}` and
    /// `task_total_seconds{kind=<outcome>}` series. Observations stay
    /// buffered, so flushing twice into *different* registries is fine;
    /// flushing twice into the *same* registry double-counts — drivers
    /// flush into a fresh snapshot target (see `Recorder::snapshot`).
    pub fn flush_into(&self, registry: &mut MetricsRegistry) {
        const PHASES: [TaskPhase; PHASE_COUNT] = [
            TaskPhase::Submit,
            TaskPhase::Query,
            TaskPhase::Allocation,
            TaskPhase::Composition,
            TaskPhase::Stream,
            TaskPhase::Terminal,
        ];
        for phase in PHASES {
            if let Some(hist) = &self.phase_hist[phase as usize] {
                registry.merge_histogram(PHASE_METRIC, Labels::kind(phase.name()), hist);
            }
        }
        for (outcome, hist) in &self.total_hist {
            registry.merge_histogram(TOTAL_METRIC, Labels::kind(outcome), hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn phases_and_total_are_recorded() {
        let mut spans = SpanTracker::new();
        let task = TaskId::new(1);
        spans.submit(task, t(0.0));
        spans.advance(task, TaskPhase::Query, t(0.010));
        spans.advance(task, TaskPhase::Allocation, t(0.030));
        spans.advance(task, TaskPhase::Stream, t(0.080));
        spans.finish(task, "on_time", t(2.080));
        assert_eq!(spans.open_count(), 0);

        let mut reg = MetricsRegistry::new();
        spans.flush_into(&mut reg);
        let submit = reg.histogram(PHASE_METRIC, Labels::kind("submit")).unwrap();
        assert_eq!(submit.total(), 1);
        assert!((submit.sum() - 0.010).abs() < 1e-9);
        let alloc = reg
            .histogram(PHASE_METRIC, Labels::kind("allocation"))
            .unwrap();
        assert!((alloc.sum() - 0.050).abs() < 1e-9);
        let total = reg
            .histogram(TOTAL_METRIC, Labels::kind("on_time"))
            .unwrap();
        assert_eq!(total.total(), 1);
        assert!((total.sum() - 2.080).abs() < 1e-9);
    }

    #[test]
    fn unknown_tasks_and_noop_transitions_ignored() {
        let mut spans = SpanTracker::new();
        spans.advance(TaskId::new(9), TaskPhase::Query, t(1.0));
        spans.finish(TaskId::new(9), "failed", t(1.0));
        assert_eq!(phase_records(&spans), 0);

        let task = TaskId::new(1);
        spans.submit(task, t(0.0));
        spans.advance(task, TaskPhase::Submit, t(5.0));
        // Still in Submit, nothing recorded yet.
        assert_eq!(phase_records(&spans), 0);
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(TaskPhase::Allocation.name(), "allocation");
        assert_eq!(TaskPhase::Terminal.name(), "terminal");
    }

    fn records_with_prefix(spans: &SpanTracker, prefix: &str) -> u64 {
        let mut reg = MetricsRegistry::new();
        spans.flush_into(&mut reg);
        reg.snapshot()
            .histograms
            .iter()
            .filter(|h| h.key.starts_with(prefix))
            .map(|h| h.histogram.total())
            .sum()
    }

    fn total_records(spans: &SpanTracker) -> u64 {
        records_with_prefix(spans, TOTAL_METRIC)
    }

    fn phase_records(spans: &SpanTracker) -> u64 {
        records_with_prefix(spans, PHASE_METRIC)
    }

    #[test]
    fn duplicate_terminal_does_not_double_count() {
        let mut spans = SpanTracker::new();
        let task = TaskId::new(1);
        spans.submit(task, t(0.0));
        spans.finish(task, "on_time", t(1.0));
        spans.finish(task, "on_time", t(2.0));
        spans.finish(task, "failed", t(3.0));
        assert_eq!(
            total_records(&spans),
            1,
            "duplicate terminals must be dropped"
        );
        assert_eq!(phase_records(&spans), 1);
    }

    #[test]
    fn late_phase_event_after_terminal_is_ignored() {
        let mut spans = SpanTracker::new();
        let task = TaskId::new(1);
        spans.submit(task, t(0.0));
        spans.finish(task, "on_time", t(1.0));
        // A straggling phase event from another node's ring arrives late.
        spans.advance(task, TaskPhase::Stream, t(1.5));
        assert_eq!(phase_records(&spans), 1);
        assert_eq!(spans.open_count(), 0);
    }

    #[test]
    fn out_of_order_phase_regression_is_ignored() {
        let mut spans = SpanTracker::new();
        let task = TaskId::new(1);
        spans.submit(task, t(0.0));
        spans.advance(task, TaskPhase::Stream, t(0.5));
        // Skewed delivery: an Allocation event arrives after Stream.
        spans.advance(task, TaskPhase::Allocation, t(0.6));
        assert_eq!(
            phase_records(&spans),
            1,
            "backward transition must not record"
        );
        spans.finish(task, "on_time", t(1.0));
        assert_eq!(total_records(&spans), 1);
    }

    #[test]
    fn resubmit_after_terminal_reopens_the_span() {
        let mut spans = SpanTracker::new();
        let task = TaskId::new(1);
        spans.submit(task, t(0.0));
        spans.finish(task, "on_time", t(1.0));
        // Genuine restart of the same task id: a fresh lifecycle counts.
        spans.submit(task, t(2.0));
        spans.finish(task, "on_time", t(3.0));
        assert_eq!(total_records(&spans), 2);
    }

    #[test]
    fn open_spans_lists_in_flight_tasks() {
        let mut spans = SpanTracker::new();
        spans.submit(TaskId::new(2), t(1.0));
        spans.submit(TaskId::new(1), t(0.0));
        spans.advance(TaskId::new(1), TaskPhase::Query, t(0.5));
        let open: Vec<_> = spans.open_spans().collect();
        assert_eq!(
            open,
            vec![
                (TaskId::new(1), TaskPhase::Query, t(0.0)),
                (TaskId::new(2), TaskPhase::Submit, t(1.0)),
            ]
        );
    }
}

#[cfg(test)]
mod interleaving_props {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Submit(u64),
        Advance(u64, TaskPhase),
        Finish(u64),
    }

    fn phase_strategy() -> impl Strategy<Value = TaskPhase> {
        prop_oneof![
            Just(TaskPhase::Submit),
            Just(TaskPhase::Query),
            Just(TaskPhase::Allocation),
            Just(TaskPhase::Composition),
            Just(TaskPhase::Stream),
            Just(TaskPhase::Terminal),
        ]
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        let task = 1u64..4;
        prop_oneof![
            task.clone().prop_map(Op::Submit),
            (task.clone(), phase_strategy()).prop_map(|(t, p)| Op::Advance(t, p)),
            task.prop_map(Op::Finish),
        ]
    }

    /// Reference model of the intended span semantics, tracking only the
    /// record counts (what the histograms must agree with).
    #[derive(Default)]
    struct Model {
        open: std::collections::BTreeMap<u64, TaskPhase>,
        phase_records: u64,
        total_records: u64,
    }

    impl Model {
        fn apply(&mut self, op: &Op) {
            match op {
                Op::Submit(t) => {
                    self.open.insert(*t, TaskPhase::Submit);
                }
                Op::Advance(t, p) => {
                    if let Some(cur) = self.open.get_mut(t) {
                        if *p > *cur {
                            self.phase_records += 1;
                            *cur = *p;
                        }
                    }
                }
                Op::Finish(t) => {
                    if self.open.remove(t).is_some() {
                        self.phase_records += 1;
                        self.total_records += 1;
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary interleavings of submit/advance/finish over a small
        /// task-id space never double-count: histogram totals match a
        /// straightforward reference model, closed terminals stay closed,
        /// and per-task end-to-end records never exceed submits.
        #[test]
        fn arbitrary_interleavings_match_model(
            ops in proptest::collection::vec(op_strategy(), 1..120)
        ) {
            let mut spans = SpanTracker::new();
            let mut model = Model::default();
            let mut submits = 0u64;
            for (i, op) in ops.iter().enumerate() {
                let now = SimTime::from_millis(i as u64 + 1);
                match op {
                    Op::Submit(t) => {
                        submits += 1;
                        spans.submit(TaskId::new(*t), now);
                    }
                    Op::Advance(t, p) => {
                        spans.advance(TaskId::new(*t), *p, now);
                    }
                    Op::Finish(t) => {
                        spans.finish(TaskId::new(*t), "on_time", now);
                    }
                }
                model.apply(op);
            }
            let mut reg = MetricsRegistry::new();
            spans.flush_into(&mut reg);
            let snap = reg.snapshot();
            let totals: u64 = snap.histograms.iter()
                .filter(|h| h.key.starts_with(TOTAL_METRIC))
                .map(|h| h.histogram.total()).sum();
            let phases: u64 = snap.histograms.iter()
                .filter(|h| h.key.starts_with(PHASE_METRIC))
                .map(|h| h.histogram.total()).sum();
            prop_assert_eq!(totals, model.total_records);
            prop_assert_eq!(phases, model.phase_records);
            prop_assert!(totals <= submits);
            prop_assert_eq!(spans.open_count(), model.open.len());
        }
    }
}
