//! Task-lifecycle spans.
//!
//! A task's journey through the middleware decomposes into phases:
//!
//! ```text
//! Submit → Query → Allocation → Composition → Stream → Terminal
//! ```
//!
//! [`SpanTracker`] measures the simulated time spent in each phase and feeds
//! per-phase latency histograms (`task_phase_seconds{kind=<phase>}`) plus an
//! end-to-end histogram (`task_total_seconds{kind=<outcome>}`) in a
//! [`MetricsRegistry`]. Phases may legitimately be skipped (a task rejected
//! at admission never reaches `Allocation`); the tracker only records phases
//! actually entered.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use arm_util::{SimTime, TaskId};

use crate::metrics::{Labels, MetricsRegistry, LATENCY_BUCKETS_SECS};

/// Histogram name for time spent inside each phase.
pub const PHASE_METRIC: &str = "task_phase_seconds";
/// Histogram name for end-to-end task latency, labelled by outcome.
pub const TOTAL_METRIC: &str = "task_total_seconds";

/// The lifecycle phases of a task, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TaskPhase {
    /// Submitted by the application; waiting to be picked up.
    Submit,
    /// The originating peer's RM is being queried for resources.
    Query,
    /// Distributed resource allocation (the BFS over domains) is running.
    Allocation,
    /// The service path is being composed across the chosen peers.
    Composition,
    /// The application session is streaming / executing.
    Stream,
    /// Finished: completed, rejected or failed.
    Terminal,
}

impl TaskPhase {
    /// Stable snake_case name, used as the `kind` label.
    pub fn name(self) -> &'static str {
        match self {
            TaskPhase::Submit => "submit",
            TaskPhase::Query => "query",
            TaskPhase::Allocation => "allocation",
            TaskPhase::Composition => "composition",
            TaskPhase::Stream => "stream",
            TaskPhase::Terminal => "terminal",
        }
    }
}

#[derive(Debug, Clone)]
struct OpenSpan {
    started: SimTime,
    phase: TaskPhase,
    phase_started: SimTime,
}

/// Tracks open task spans and records phase/total latencies on transition.
#[derive(Debug, Clone, Default)]
pub struct SpanTracker {
    open: BTreeMap<TaskId, OpenSpan>,
}

impl SpanTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks currently in flight.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Opens a span for `task` in the [`TaskPhase::Submit`] phase.
    /// Re-submitting an in-flight task restarts its span.
    pub fn submit(&mut self, task: TaskId, now: SimTime) {
        self.open.insert(
            task,
            OpenSpan {
                started: now,
                phase: TaskPhase::Submit,
                phase_started: now,
            },
        );
    }

    /// Moves `task` into `phase`, recording the time spent in the phase it
    /// is leaving. Unknown tasks and no-op transitions (already in `phase`)
    /// are ignored, so emitters don't need to dedup.
    pub fn advance(
        &mut self,
        registry: &mut MetricsRegistry,
        task: TaskId,
        phase: TaskPhase,
        now: SimTime,
    ) {
        let Some(span) = self.open.get_mut(&task) else {
            return;
        };
        if span.phase == phase {
            return;
        }
        let spent = now.saturating_since(span.phase_started).as_secs_f64();
        registry.observe(
            PHASE_METRIC,
            Labels::kind(span.phase.name()),
            &LATENCY_BUCKETS_SECS,
            spent,
        );
        span.phase = phase;
        span.phase_started = now;
    }

    /// Closes `task`'s span with the given outcome label (`"on_time"`,
    /// `"late"`, `"rejected"`, `"failed"`, ...): records the final phase's
    /// residence time and the end-to-end latency. Unknown tasks are ignored.
    pub fn finish(
        &mut self,
        registry: &mut MetricsRegistry,
        task: TaskId,
        outcome: &'static str,
        now: SimTime,
    ) {
        let Some(span) = self.open.remove(&task) else {
            return;
        };
        let spent = now.saturating_since(span.phase_started).as_secs_f64();
        registry.observe(
            PHASE_METRIC,
            Labels::kind(span.phase.name()),
            &LATENCY_BUCKETS_SECS,
            spent,
        );
        let total = now.saturating_since(span.started).as_secs_f64();
        registry.observe(
            TOTAL_METRIC,
            Labels::kind(outcome),
            &LATENCY_BUCKETS_SECS,
            total,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn phases_and_total_are_recorded() {
        let mut reg = MetricsRegistry::new();
        let mut spans = SpanTracker::new();
        let task = TaskId::new(1);
        spans.submit(task, t(0.0));
        spans.advance(&mut reg, task, TaskPhase::Query, t(0.010));
        spans.advance(&mut reg, task, TaskPhase::Allocation, t(0.030));
        spans.advance(&mut reg, task, TaskPhase::Stream, t(0.080));
        spans.finish(&mut reg, task, "on_time", t(2.080));
        assert_eq!(spans.open_count(), 0);

        let submit = reg.histogram(PHASE_METRIC, Labels::kind("submit")).unwrap();
        assert_eq!(submit.total(), 1);
        assert!((submit.sum() - 0.010).abs() < 1e-9);
        let alloc = reg
            .histogram(PHASE_METRIC, Labels::kind("allocation"))
            .unwrap();
        assert!((alloc.sum() - 0.050).abs() < 1e-9);
        let total = reg
            .histogram(TOTAL_METRIC, Labels::kind("on_time"))
            .unwrap();
        assert_eq!(total.total(), 1);
        assert!((total.sum() - 2.080).abs() < 1e-9);
    }

    #[test]
    fn unknown_tasks_and_noop_transitions_ignored() {
        let mut reg = MetricsRegistry::new();
        let mut spans = SpanTracker::new();
        spans.advance(&mut reg, TaskId::new(9), TaskPhase::Query, t(1.0));
        spans.finish(&mut reg, TaskId::new(9), "failed", t(1.0));
        assert!(reg
            .histogram(PHASE_METRIC, Labels::kind("submit"))
            .is_none());

        let task = TaskId::new(1);
        spans.submit(task, t(0.0));
        spans.advance(&mut reg, task, TaskPhase::Submit, t(5.0));
        // Still in Submit, nothing recorded yet.
        assert!(reg
            .histogram(PHASE_METRIC, Labels::kind("submit"))
            .is_none());
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(TaskPhase::Allocation.name(), "allocation");
        assert_eq!(TaskPhase::Terminal.name(), "terminal");
    }
}
