//! Structured trace events: a bounded in-memory ring buffer plus a JSONL
//! (one JSON object per line) export format.
//!
//! Every event carries the *simulation* timestamp it happened at, the peer
//! that emitted it and (when known) the domain it concerns. The event
//! vocabulary covers the protocol's observable decisions end to end:
//! membership (join/redirect), RM election with qualification scores, domain
//! splits, backup promotion/failover, gossip rounds with Bloom summary
//! exchange, admission control verdicts, LLF scheduling decisions, session
//! repair and §4.5 fairness reassignment, and task-lifecycle phase
//! transitions.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::{self, Write};

use arm_util::{DomainId, NodeId, SessionId, SimTime, TaskId};

use crate::span::TaskPhase;

/// What happened. Externally tagged on serialisation, so a JSONL line reads
/// `{"at":...,"peer":...,"kind":{"GossipRound":{...}}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A peer's join request was accepted into the emitting RM's domain.
    JoinAccepted {
        /// The joining peer.
        member: NodeId,
    },
    /// A join request was redirected towards a better-placed RM.
    JoinRedirected {
        /// The joining peer.
        member: NodeId,
        /// Where it was sent instead.
        to: NodeId,
    },
    /// A candidate was scored during RM election / backup selection
    /// (the paper's qualification criteria: capacity, stability, load).
    Qualification {
        /// The peer being scored.
        candidate: NodeId,
        /// Composite qualification score (higher is better).
        score: f64,
    },
    /// The emitting peer won an election and became its domain's RM.
    RmElected {
        /// Number of peers it now manages.
        members: u64,
    },
    /// An overloaded domain split; the emitter spun off a new domain.
    DomainSplit {
        /// Identifier of the newly created domain.
        new_domain: DomainId,
        /// The RM chosen to lead it.
        new_rm: NodeId,
        /// How many members moved over.
        moved: u64,
    },
    /// A backup RM promoted itself after its primary failed (failover).
    BackupPromoted {
        /// The failed primary it replaces.
        old_rm: NodeId,
    },
    /// One gossip round fired: state summaries pushed to fan-out peers.
    GossipRound {
        /// How many peers were gossiped to this round.
        fanout: u64,
    },
    /// A Bloom-filter object/service summary was exchanged with a peer RM.
    BloomExchange {
        /// The remote RM involved.
        with: NodeId,
        /// Number of set bits in the summary sent (density proxy).
        bits_set: u64,
    },
    /// Admission control accepted a task.
    AdmissionAccepted {
        /// The admitted task.
        task: TaskId,
    },
    /// Admission control rejected a task, with the reason.
    AdmissionRejected {
        /// The rejected task.
        task: TaskId,
        /// Why it was turned away (e.g. `"no_capacity"`, `"deadline"`).
        /// Borrowed from the emitter's static vocabulary on the hot path;
        /// owned only after deserialization.
        reason: std::borrow::Cow<'static, str>,
    },
    /// The local least-laxity-first scheduler dispatched a new job.
    SchedDecision {
        /// The job granted the CPU (peer-local job id).
        job: u64,
        /// Its laxity at decision time, microseconds (negative = already
        /// past the point where it can finish on time).
        laxity_us: i64,
    },
    /// A session-repair attempt completed.
    SessionRepair {
        /// The session being repaired.
        session: SessionId,
        /// Whether a replacement peer was found.
        ok: bool,
    },
    /// A hot session was reassigned to balance load (the paper's §4.5).
    SessionReassigned {
        /// The moved session.
        session: SessionId,
        /// Fairness-index improvement the move achieved.
        fairness_gain: f64,
    },
    /// A session reached the end of its negotiated duration and the RM
    /// released its resources, notifying every participant.
    SessionClosed {
        /// The session that ended.
        session: SessionId,
    },
    /// A task crossed into a new lifecycle phase.
    TaskPhase {
        /// The task in question.
        task: TaskId,
        /// The phase it entered.
        phase: TaskPhase,
    },
    /// A traced protocol message arrived at the emitting peer: one causal
    /// hop of a distributed operation. Only emitted for messages carrying a
    /// live trace context (periodic traffic rides an empty context and stays
    /// silent).
    Hop {
        /// The wire kind of the message that arrived (`Message::kind()`).
        /// Borrowed (`Cow::Borrowed`) when emitted — hop events fire once
        /// per traced message, so the hot path must not allocate.
        msg: std::borrow::Cow<'static, str>,
        /// The peer the message came from.
        from: NodeId,
    },
    /// A health rule changed state (raised or cleared) on the emitting
    /// peer's pulse evaluator.
    Health {
        /// Rule identifier (`rm_stale`, `queue_saturated`, ...). Borrowed
        /// from the rule's static vocabulary when emitted.
        rule: std::borrow::Cow<'static, str>,
        /// `true` when the rule started firing, `false` when it cleared.
        firing: bool,
        /// The observed value the predicate judged at the edge.
        value: f64,
    },
}

impl TraceKind {
    /// Stable snake_case name of this event kind, for counting and display.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::JoinAccepted { .. } => "join_accepted",
            TraceKind::JoinRedirected { .. } => "join_redirected",
            TraceKind::Qualification { .. } => "qualification",
            TraceKind::RmElected { .. } => "rm_elected",
            TraceKind::DomainSplit { .. } => "domain_split",
            TraceKind::BackupPromoted { .. } => "backup_promoted",
            TraceKind::GossipRound { .. } => "gossip_round",
            TraceKind::BloomExchange { .. } => "bloom_exchange",
            TraceKind::AdmissionAccepted { .. } => "admission_accepted",
            TraceKind::AdmissionRejected { .. } => "admission_rejected",
            TraceKind::SchedDecision { .. } => "sched_decision",
            TraceKind::SessionRepair { .. } => "session_repair",
            TraceKind::SessionReassigned { .. } => "session_reassigned",
            TraceKind::SessionClosed { .. } => "session_closed",
            TraceKind::TaskPhase { .. } => "task_phase",
            TraceKind::Hop { .. } => "hop",
            TraceKind::Health { .. } => "health",
        }
    }
}

/// Version of the JSONL trace export format. Bumped whenever the line
/// schema changes; the export's first line is `{"schema":<N>}`.
///
/// * **1** — implicit (headerless) format: `at`/`peer`/`domain`/`kind`.
/// * **2** — adds the header line plus optional causal fields
///   (`trace_id`/`span`/`parent`, omitted when zero) and the `hop` kind.
pub const TRACE_SCHEMA: u32 = 2;

fn is_zero(v: &u64) -> bool {
    *v == 0
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation time the event happened at.
    pub at: SimTime,
    /// The peer that emitted it.
    pub peer: NodeId,
    /// The domain it concerns, when attributable.
    pub domain: Option<DomainId>,
    /// The distributed trace this event belongs to (0 = untraced).
    #[serde(default, skip_serializing_if = "is_zero")]
    pub trace_id: u64,
    /// The span (one event-handling episode on one peer) the event was
    /// recorded under (0 = untraced).
    #[serde(default, skip_serializing_if = "is_zero")]
    pub span: u64,
    /// The causal parent span — the handling episode (usually on another
    /// peer) whose message triggered this one (0 = root or untraced).
    #[serde(default, skip_serializing_if = "is_zero")]
    pub parent: u64,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Convenience constructor for an uncorrelated (causality-free) event.
    pub fn new(at: SimTime, peer: NodeId, domain: Option<DomainId>, kind: TraceKind) -> Self {
        TraceEvent {
            at,
            peer,
            domain,
            trace_id: 0,
            span: 0,
            parent: 0,
            kind,
        }
    }

    /// Attaches causal links: the trace the event belongs to, the span it
    /// was recorded under, and that span's parent.
    pub fn causal(mut self, trace_id: u64, span: u64, parent: u64) -> Self {
        self.trace_id = trace_id;
        self.span = span;
        self.parent = parent;
        self
    }
}

/// Merges per-node trace rings into one causally-orderable timeline with a
/// deterministic total order: time, then emitting peer, then span id. Two
/// collections containing the same events produce byte-identical timelines
/// regardless of collection order.
pub fn merge_timeline(mut events: Vec<TraceEvent>) -> Vec<TraceEvent> {
    events.sort_by(|a, b| {
        (a.at, a.peer, a.span)
            .cmp(&(b.at, b.peer, b.span))
            .then_with(|| a.kind.name().cmp(b.kind.name()))
    });
    events
}

/// Streaming k-way merge of per-node trace rings into one timeline, with
/// exactly the same total order as [`merge_timeline`] on the concatenation
/// — but O(n log k) instead of a full O(n log n) re-sort, because each
/// ring is already time-ordered (nodes append events as they happen).
///
/// Rings that turn out *not* to be ordered (e.g. a clock step on a live
/// node) are sorted individually first, so the result is always correct;
/// the common case pays only a linear ordered-check per ring.
pub fn merge_timelines(mut rings: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn sort_key(e: &TraceEvent) -> (SimTime, NodeId, u64, &'static str) {
        (e.at, e.peer, e.span, e.kind.name())
    }

    for ring in &mut rings {
        if !ring.windows(2).all(|w| sort_key(&w[0]) <= sort_key(&w[1])) {
            ring.sort_by(|a, b| sort_key(a).cmp(&sort_key(b)));
        }
    }
    let total = rings.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors: Vec<std::vec::IntoIter<TraceEvent>> =
        rings.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<TraceEvent>> = cursors.iter_mut().map(Iterator::next).collect();
    // Heap entries carry only the Copy sort key plus the ring index; the
    // index doubles as the final tiebreak, making the merge stable across
    // equal keys — so with rings supplied in concatenation order the
    // output is identical to `merge_timeline` (a stable sort) on the
    // concatenation.
    let mut heap = BinaryHeap::with_capacity(heads.len());
    for (i, head) in heads.iter().enumerate() {
        if let Some(e) = head {
            heap.push(Reverse((sort_key(e), i)));
        }
    }
    while let Some(Reverse((_, i))) = heap.pop() {
        let event = heads[i].take().expect("heap entry without a head");
        out.push(event);
        if let Some(next) = cursors[i].next() {
            heap.push(Reverse((sort_key(&next), i)));
            heads[i] = Some(next);
        }
    }
    out
}

/// A bounded ring buffer of trace events.
///
/// When full, pushing evicts the *oldest* event and bumps the `dropped`
/// counter — recent history is always retained, and the loss is visible.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    /// Per-kind push tallies. Kind names are interned `&'static str`s from
    /// a small fixed vocabulary, so a pointer-first linear scan (with a
    /// string-equality fallback for unequal statics) outruns a map on the
    /// per-event hot path; [`TraceLog::kind_counts`] sorts on demand.
    by_kind: Vec<(&'static str, u64)>,
}

impl TraceLog {
    /// Default in-memory capacity (events).
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a log that keeps at most `capacity` events in memory.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            capacity: capacity.max(1),
            // Pre-size the ring (capped: callers pass capacities up to
            // hundreds of thousands) so steady-state pushes never pause
            // to reallocate mid-run.
            events: VecDeque::with_capacity(capacity.clamp(1, 8_192)),
            dropped: 0,
            by_kind: Vec::new(),
        }
    }

    /// Appends an event, evicting the oldest if at capacity.
    pub fn push(&mut self, event: TraceEvent) {
        let name = event.kind.name();
        match self
            .by_kind
            .iter_mut()
            .find(|(k, _)| std::ptr::eq(*k, name) || *k == name)
        {
            Some((_, n)) => *n += 1,
            // arm-lint: allow(unbounded-growth) -- keyed by the static event-kind name vocabulary
            None => self.by_kind.push((name, 1)),
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Total pushes per event kind, *including* evicted events — eviction
    /// loses payloads, not the tally. Sorted by kind name.
    pub fn kind_counts(&self) -> BTreeMap<&'static str, u64> {
        self.by_kind.iter().copied().collect()
    }

    /// Total pushes of one event kind (see [`kind_counts`](Self::kind_counts)).
    pub fn count_of(&self, kind_name: &str) -> u64 {
        self.by_kind
            .iter()
            .find(|(k, _)| *k == kind_name)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Writes the retained events as a schema-versioned JSONL export: a
    /// `{"schema":N}` header line followed by one JSON object per event.
    pub fn write_jsonl<W: Write>(&self, out: &mut W) -> io::Result<()> {
        write_jsonl(out, self.events.iter())
    }

    /// Parses events back from JSONL text (the inverse of
    /// [`write_jsonl`](Self::write_jsonl)); the `{"schema":N}` header is
    /// validated when present (schema-1 exports were headerless), and blank
    /// lines are skipped.
    pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if i == 0 && line.starts_with("{\"schema\"") {
                let header: SchemaHeader = serde_json::from_str(line).map_err(|e| e.to_string())?;
                if header.schema > TRACE_SCHEMA {
                    return Err(format!(
                        "trace export schema {} is newer than supported {}",
                        header.schema, TRACE_SCHEMA
                    ));
                }
                continue;
            }
            events.push(serde_json::from_str::<TraceEvent>(line).map_err(|e| e.to_string())?);
        }
        Ok(events)
    }
}

#[derive(Serialize, Deserialize)]
struct SchemaHeader {
    schema: u32,
}

/// Writes any event sequence as a schema-versioned JSONL export (header
/// line `{"schema":N}`, then one JSON object per event). [`TraceLog`] and
/// the merged cross-node timeline share this one format.
pub fn write_jsonl<'a, W, I>(out: &mut W, events: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a TraceEvent>,
{
    let header = serde_json::to_string(&SchemaHeader {
        schema: TRACE_SCHEMA,
    })
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    out.write_all(header.as_bytes())?;
    out.write_all(b"\n")?;
    for event in events {
        let line = serde_json::to_string(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent::new(
            SimTime::from_micros(t),
            NodeId::new(1),
            Some(DomainId::new(2)),
            kind,
        )
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_counts_drops() {
        let mut log = TraceLog::new(3);
        for i in 0..5 {
            log.push(ev(i, TraceKind::GossipRound { fanout: i }));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let times: Vec<u64> = log.iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![2, 3, 4]);
        // The tally still covers all five pushes.
        assert_eq!(log.count_of("gossip_round"), 5);
    }

    #[test]
    fn jsonl_roundtrip_preserves_events() {
        let mut log = TraceLog::new(16);
        log.push(ev(
            10,
            TraceKind::AdmissionRejected {
                task: TaskId::new(7),
                reason: "no_capacity".into(),
            },
        ));
        log.push(ev(
            20,
            TraceKind::Qualification {
                candidate: NodeId::new(9),
                score: 0.75,
            },
        ));
        log.push(ev(
            30,
            TraceKind::TaskPhase {
                task: TaskId::new(7),
                phase: TaskPhase::Allocation,
            },
        ));
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Header line plus one line per event.
        assert_eq!(text.lines().count(), 4);
        assert_eq!(text.lines().next().unwrap(), "{\"schema\":2}");
        let parsed = TraceLog::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        for (orig, back) in log.iter().zip(&parsed) {
            assert_eq!(orig, back);
        }
    }

    #[test]
    fn headerless_legacy_exports_still_parse() {
        // Schema-1 exports had no header line; parse_jsonl must accept them.
        let event = ev(10, TraceKind::GossipRound { fanout: 3 });
        let line = serde_json::to_string(&event).unwrap();
        let parsed = TraceLog::parse_jsonl(&format!("{line}\n")).unwrap();
        assert_eq!(parsed, vec![event]);
    }

    #[test]
    fn newer_schema_is_rejected() {
        let err = TraceLog::parse_jsonl("{\"schema\":99}\n").unwrap_err();
        assert!(err.contains("newer than supported"));
    }

    #[test]
    fn causal_fields_roundtrip_and_default_to_zero() {
        let event = ev(5, TraceKind::GossipRound { fanout: 1 }).causal(7, 8, 9);
        let line = serde_json::to_string(&event).unwrap();
        assert!(line.contains("\"trace_id\":7"));
        let back: TraceEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, event);

        // Untraced events omit the causal fields entirely, and lines
        // without them decode to zeros (old exports stay readable).
        let bare = ev(5, TraceKind::GossipRound { fanout: 1 });
        let line = serde_json::to_string(&bare).unwrap();
        assert!(!line.contains("trace_id"));
        let back: TraceEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back.span, 0);
    }

    #[test]
    fn merge_timeline_is_order_invariant() {
        let mk = |t: u64, peer: u64, span: u64| {
            TraceEvent::new(
                SimTime::from_micros(t),
                NodeId::new(peer),
                None,
                TraceKind::GossipRound { fanout: 1 },
            )
            .causal(1, span, 0)
        };
        let a = vec![mk(2, 1, 10), mk(1, 2, 20), mk(1, 1, 30)];
        let mut b = a.clone();
        b.reverse();
        let merged_a = merge_timeline(a);
        let merged_b = merge_timeline(b);
        assert_eq!(merged_a, merged_b);
        let order: Vec<(u64, u64)> = merged_a
            .iter()
            .map(|e| (e.at.as_micros(), e.peer.raw()))
            .collect();
        assert_eq!(order, vec![(1, 1), (1, 2), (2, 1)]);
    }

    #[test]
    fn kway_merge_matches_full_sort() {
        let mk = |t: u64, peer: u64, span: u64| {
            TraceEvent::new(
                SimTime::from_micros(t),
                NodeId::new(peer),
                None,
                TraceKind::GossipRound { fanout: 1 },
            )
            .causal(1, span, 0)
        };
        // Three ordered per-node rings with interleaved and equal stamps.
        let rings = vec![
            vec![mk(1, 1, 5), mk(3, 1, 6), mk(3, 1, 7), mk(9, 1, 8)],
            vec![mk(2, 2, 1), mk(3, 2, 2), mk(4, 2, 3)],
            vec![],
            vec![mk(1, 3, 9), mk(9, 3, 10)],
        ];
        let concat: Vec<TraceEvent> = rings.iter().flatten().cloned().collect();
        assert_eq!(merge_timelines(rings), merge_timeline(concat));
    }

    #[test]
    fn kway_merge_repairs_an_unsorted_ring() {
        let mk = |t: u64, span: u64| {
            TraceEvent::new(
                SimTime::from_micros(t),
                NodeId::new(1),
                None,
                TraceKind::GossipRound { fanout: 1 },
            )
            .causal(1, span, 0)
        };
        let rings = vec![vec![mk(5, 1), mk(2, 2)], vec![mk(3, 3)]];
        let concat: Vec<TraceEvent> = rings.iter().flatten().cloned().collect();
        let merged = merge_timelines(rings);
        assert_eq!(merged, merge_timeline(concat));
        let times: Vec<u64> = merged.iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![2, 3, 5]);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            TraceKind::DomainSplit {
                new_domain: DomainId::new(1),
                new_rm: NodeId::new(2),
                moved: 3
            }
            .name(),
            "domain_split"
        );
        assert_eq!(
            TraceKind::SessionRepair {
                session: SessionId::new(1),
                ok: true
            }
            .name(),
            "session_repair"
        );
    }
}
