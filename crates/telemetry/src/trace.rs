//! Structured trace events: a bounded in-memory ring buffer plus a JSONL
//! (one JSON object per line) export format.
//!
//! Every event carries the *simulation* timestamp it happened at, the peer
//! that emitted it and (when known) the domain it concerns. The event
//! vocabulary covers the protocol's observable decisions end to end:
//! membership (join/redirect), RM election with qualification scores, domain
//! splits, backup promotion/failover, gossip rounds with Bloom summary
//! exchange, admission control verdicts, LLF scheduling decisions, session
//! repair and §4.5 fairness reassignment, and task-lifecycle phase
//! transitions.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::{self, Write};

use arm_util::{DomainId, NodeId, SessionId, SimTime, TaskId};

use crate::span::TaskPhase;

/// What happened. Externally tagged on serialisation, so a JSONL line reads
/// `{"at":...,"peer":...,"kind":{"GossipRound":{...}}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A peer's join request was accepted into the emitting RM's domain.
    JoinAccepted {
        /// The joining peer.
        member: NodeId,
    },
    /// A join request was redirected towards a better-placed RM.
    JoinRedirected {
        /// The joining peer.
        member: NodeId,
        /// Where it was sent instead.
        to: NodeId,
    },
    /// A candidate was scored during RM election / backup selection
    /// (the paper's qualification criteria: capacity, stability, load).
    Qualification {
        /// The peer being scored.
        candidate: NodeId,
        /// Composite qualification score (higher is better).
        score: f64,
    },
    /// The emitting peer won an election and became its domain's RM.
    RmElected {
        /// Number of peers it now manages.
        members: u64,
    },
    /// An overloaded domain split; the emitter spun off a new domain.
    DomainSplit {
        /// Identifier of the newly created domain.
        new_domain: DomainId,
        /// The RM chosen to lead it.
        new_rm: NodeId,
        /// How many members moved over.
        moved: u64,
    },
    /// A backup RM promoted itself after its primary failed (failover).
    BackupPromoted {
        /// The failed primary it replaces.
        old_rm: NodeId,
    },
    /// One gossip round fired: state summaries pushed to fan-out peers.
    GossipRound {
        /// How many peers were gossiped to this round.
        fanout: u64,
    },
    /// A Bloom-filter object/service summary was exchanged with a peer RM.
    BloomExchange {
        /// The remote RM involved.
        with: NodeId,
        /// Number of set bits in the summary sent (density proxy).
        bits_set: u64,
    },
    /// Admission control accepted a task.
    AdmissionAccepted {
        /// The admitted task.
        task: TaskId,
    },
    /// Admission control rejected a task, with the reason.
    AdmissionRejected {
        /// The rejected task.
        task: TaskId,
        /// Why it was turned away (e.g. `"no_capacity"`, `"deadline"`).
        reason: String,
    },
    /// The local least-laxity-first scheduler dispatched a new job.
    SchedDecision {
        /// The job granted the CPU (peer-local job id).
        job: u64,
        /// Its laxity at decision time, microseconds (negative = already
        /// past the point where it can finish on time).
        laxity_us: i64,
    },
    /// A session-repair attempt completed.
    SessionRepair {
        /// The session being repaired.
        session: SessionId,
        /// Whether a replacement peer was found.
        ok: bool,
    },
    /// A hot session was reassigned to balance load (the paper's §4.5).
    SessionReassigned {
        /// The moved session.
        session: SessionId,
        /// Fairness-index improvement the move achieved.
        fairness_gain: f64,
    },
    /// A task crossed into a new lifecycle phase.
    TaskPhase {
        /// The task in question.
        task: TaskId,
        /// The phase it entered.
        phase: TaskPhase,
    },
}

impl TraceKind {
    /// Stable snake_case name of this event kind, for counting and display.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::JoinAccepted { .. } => "join_accepted",
            TraceKind::JoinRedirected { .. } => "join_redirected",
            TraceKind::Qualification { .. } => "qualification",
            TraceKind::RmElected { .. } => "rm_elected",
            TraceKind::DomainSplit { .. } => "domain_split",
            TraceKind::BackupPromoted { .. } => "backup_promoted",
            TraceKind::GossipRound { .. } => "gossip_round",
            TraceKind::BloomExchange { .. } => "bloom_exchange",
            TraceKind::AdmissionAccepted { .. } => "admission_accepted",
            TraceKind::AdmissionRejected { .. } => "admission_rejected",
            TraceKind::SchedDecision { .. } => "sched_decision",
            TraceKind::SessionRepair { .. } => "session_repair",
            TraceKind::SessionReassigned { .. } => "session_reassigned",
            TraceKind::TaskPhase { .. } => "task_phase",
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation time the event happened at.
    pub at: SimTime,
    /// The peer that emitted it.
    pub peer: NodeId,
    /// The domain it concerns, when attributable.
    pub domain: Option<DomainId>,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Convenience constructor.
    pub fn new(at: SimTime, peer: NodeId, domain: Option<DomainId>, kind: TraceKind) -> Self {
        TraceEvent {
            at,
            peer,
            domain,
            kind,
        }
    }
}

/// A bounded ring buffer of trace events.
///
/// When full, pushing evicts the *oldest* event and bumps the `dropped`
/// counter — recent history is always retained, and the loss is visible.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    by_kind: BTreeMap<&'static str, u64>,
}

impl TraceLog {
    /// Default in-memory capacity (events).
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a log that keeps at most `capacity` events in memory.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
            by_kind: BTreeMap::new(),
        }
    }

    /// Appends an event, evicting the oldest if at capacity.
    pub fn push(&mut self, event: TraceEvent) {
        *self.by_kind.entry(event.kind.name()).or_insert(0) += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Total pushes per event kind, *including* evicted events — eviction
    /// loses payloads, not the tally.
    pub fn kind_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.by_kind
    }

    /// Total pushes of one event kind (see [`kind_counts`](Self::kind_counts)).
    pub fn count_of(&self, kind_name: &str) -> u64 {
        self.by_kind.get(kind_name).copied().unwrap_or(0)
    }

    /// Writes every retained event as one JSON object per line.
    pub fn write_jsonl<W: Write>(&self, out: &mut W) -> io::Result<()> {
        for event in &self.events {
            let line = serde_json::to_string(event)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Parses events back from JSONL text (the inverse of
    /// [`write_jsonl`](Self::write_jsonl)); blank lines are skipped.
    pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| serde_json::from_str::<TraceEvent>(l).map_err(|e| e.to_string()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent::new(
            SimTime::from_micros(t),
            NodeId::new(1),
            Some(DomainId::new(2)),
            kind,
        )
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_counts_drops() {
        let mut log = TraceLog::new(3);
        for i in 0..5 {
            log.push(ev(i, TraceKind::GossipRound { fanout: i }));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let times: Vec<u64> = log.iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![2, 3, 4]);
        // The tally still covers all five pushes.
        assert_eq!(log.count_of("gossip_round"), 5);
    }

    #[test]
    fn jsonl_roundtrip_preserves_events() {
        let mut log = TraceLog::new(16);
        log.push(ev(
            10,
            TraceKind::AdmissionRejected {
                task: TaskId::new(7),
                reason: "no_capacity".into(),
            },
        ));
        log.push(ev(
            20,
            TraceKind::Qualification {
                candidate: NodeId::new(9),
                score: 0.75,
            },
        ));
        log.push(ev(
            30,
            TraceKind::TaskPhase {
                task: TaskId::new(7),
                phase: TaskPhase::Allocation,
            },
        ));
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        let parsed = TraceLog::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        for (orig, back) in log.iter().zip(&parsed) {
            assert_eq!(orig, back);
        }
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            TraceKind::DomainSplit {
                new_domain: DomainId::new(1),
                new_rm: NodeId::new(2),
                moved: 3
            }
            .name(),
            "domain_split"
        );
        assert_eq!(
            TraceKind::SessionRepair {
                session: SessionId::new(1),
                ok: true
            }
            .name(),
            "session_repair"
        );
    }
}
