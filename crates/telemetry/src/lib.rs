//! Deterministic observability for the adaptive P2P resource-management
//! middleware.
//!
//! Three pillars, all driven exclusively by *simulation* time so recordings
//! are reproducible bit-for-bit from a scenario seed:
//!
//! * a metrics registry ([`metrics`]) — counters, gauges and fixed-bucket
//!   histograms keyed by `(peer, domain, kind)` labels, with mergeable
//!   serialisable snapshots;
//! * a structured trace log ([`trace`]) — a bounded ring buffer of typed
//!   protocol events (election, split, gossip, admission, repair, ...) with
//!   JSONL export;
//! * task-lifecycle spans ([`span`]) — submit → query → allocation →
//!   composition → stream → terminal phase timing feeding per-phase latency
//!   histograms.
//!
//! The [`Recorder`] bundles all three behind one handle. A disabled recorder
//! ([`Recorder::disabled`], the default) drops everything at the first
//! branch, so uninstrumented runs pay one predictable-taken branch per
//! callsite and nothing else.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod health;
pub mod metrics;
pub mod series;
pub mod span;
pub mod trace;

pub use health::{
    standard_rules, HealthEvaluator, HealthRule, HealthStatus, HealthThresholds, HealthTransition,
    Predicate, HEALTH_ALERTS_TOTAL, HEALTH_FIRING,
};
pub use metrics::{
    FixedHistogram, Labels, MetricKey, MetricsRegistry, MetricsSnapshot, COUNT_BUCKETS,
    LATENCY_BUCKETS_SECS,
};
pub use series::{SeriesBatch, SeriesKind, SeriesSlice, SeriesStore};
pub use span::{SpanTracker, TaskPhase, PHASE_METRIC, TOTAL_METRIC};
pub use trace::{
    merge_timeline, merge_timelines, write_jsonl, TraceEvent, TraceKind, TraceLog, TRACE_SCHEMA,
};

use arm_util::{DomainId, NodeId, SimTime};

/// One handle bundling the metrics registry, trace log and span tracker.
///
/// Created disabled by default: every recording method returns immediately.
/// [`Recorder::enabled`] turns on all three pillars.
#[derive(Debug, Clone)]
pub struct Recorder {
    enabled: bool,
    /// Metric series recorded so far.
    pub metrics: MetricsRegistry,
    /// Structured protocol events recorded so far.
    pub trace: TraceLog,
    /// Open task-lifecycle spans.
    pub spans: SpanTracker,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl Recorder {
    /// A recorder that drops everything (the zero-cost default).
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            metrics: MetricsRegistry::new(),
            trace: TraceLog::new(1),
            spans: SpanTracker::new(),
        }
    }

    /// A recorder that keeps up to `trace_capacity` trace events in memory.
    pub fn enabled(trace_capacity: usize) -> Self {
        Recorder {
            enabled: true,
            metrics: MetricsRegistry::new(),
            trace: TraceLog::new(trace_capacity),
            spans: SpanTracker::new(),
        }
    }

    /// Whether this recorder is recording at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a trace event (drops it when disabled).
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            // arm-lint: allow(unbounded-growth) -- TraceLog::push evicts its oldest event at capacity
            self.trace.push(event);
        }
    }

    /// Increments a counter by 1 (no-op when disabled).
    #[inline]
    pub fn inc(&mut self, name: &'static str, labels: Labels) {
        if self.enabled {
            self.metrics.inc(name, labels);
        }
    }

    /// Increments a counter by `delta` (no-op when disabled).
    #[inline]
    pub fn add(&mut self, name: &'static str, labels: Labels, delta: u64) {
        if self.enabled {
            self.metrics.add(name, labels, delta);
        }
    }

    /// Sets a gauge (no-op when disabled).
    #[inline]
    pub fn set_gauge(&mut self, name: &'static str, labels: Labels, value: f64) {
        if self.enabled {
            self.metrics.set_gauge(name, labels, value);
        }
    }

    /// Records a histogram observation (no-op when disabled).
    #[inline]
    pub fn observe(&mut self, name: &'static str, labels: Labels, bounds: &[f64], value: f64) {
        if self.enabled {
            self.metrics.observe(name, labels, bounds, value);
        }
    }

    /// Merges a pre-aggregated histogram into a series (no-op when
    /// disabled).
    #[inline]
    pub fn merge_histogram(&mut self, name: &'static str, labels: Labels, hist: &FixedHistogram) {
        if self.enabled {
            self.metrics.merge_histogram(name, labels, hist);
        }
    }

    /// Opens a task span (no-op when disabled).
    #[inline]
    pub fn task_submitted(&mut self, task: arm_util::TaskId, now: SimTime) {
        if self.enabled {
            self.spans.submit(task, now);
        }
    }

    /// Advances a task span to `phase` (no-op when disabled).
    #[inline]
    pub fn task_phase(&mut self, task: arm_util::TaskId, phase: TaskPhase, now: SimTime) {
        if self.enabled {
            self.spans.advance(task, phase, now);
        }
    }

    /// Closes a task span with `outcome` (no-op when disabled).
    #[inline]
    pub fn task_finished(&mut self, task: arm_util::TaskId, outcome: &'static str, now: SimTime) {
        if self.enabled {
            self.spans.finish(task, outcome, now);
        }
    }

    /// Freezes the metric state into a serialisable snapshot, folding in
    /// the span tracker's buffered phase/total latency histograms (the hot
    /// path batches those locally instead of touching the registry).
    pub fn snapshot(&self) -> MetricsSnapshot {
        if !self.enabled {
            return self.metrics.snapshot();
        }
        let mut merged = self.metrics.clone();
        self.spans.flush_into(&mut merged);
        merged.snapshot()
    }
}

/// The arm-pulse driver state: a retained-series store plus a health
/// evaluator, advanced by one [`Pulse::tick`] per sampling period.
///
/// Drivers (the net-peer event loop, the sim harness) create a `Pulse`
/// only when sampling is enabled — its absence is the zero-cost path,
/// mirroring how a disabled [`Recorder`] drops everything.
#[derive(Debug, Clone)]
pub struct Pulse {
    /// Retained per-metric series.
    pub store: SeriesStore,
    /// Health rules evaluated after every sample.
    pub evaluator: HealthEvaluator,
}

impl Pulse {
    /// A pulse retaining `capacity` samples per series, running the
    /// standard rule set with the given thresholds.
    pub fn new(capacity: usize, thresholds: &HealthThresholds) -> Self {
        Pulse {
            store: SeriesStore::new(capacity),
            evaluator: HealthEvaluator::standard(thresholds),
        }
    }

    /// A pulse with a caller-supplied rule set.
    pub fn with_rules(capacity: usize, rules: Vec<HealthRule>) -> Self {
        Pulse {
            store: SeriesStore::new(capacity),
            evaluator: HealthEvaluator::new(rules),
        }
    }

    /// One sampling tick: sweeps the recorder's registry into the series
    /// store, re-evaluates every health rule, and records each rule edge
    /// back into the recorder as a `health` trace event plus the
    /// `health_alerts_total` / `health_firing` metrics. Returns the edges.
    pub fn tick(
        &mut self,
        now: SimTime,
        recorder: &mut Recorder,
        peer: NodeId,
        domain: Option<DomainId>,
    ) -> Vec<HealthTransition> {
        self.store.sample(now, &recorder.metrics);
        let edges = self.evaluator.evaluate(&self.store);
        for edge in &edges {
            if edge.firing {
                recorder.inc(HEALTH_ALERTS_TOTAL, Labels::kind(edge.rule));
            }
            recorder.set_gauge(
                HEALTH_FIRING,
                Labels::kind(edge.rule),
                if edge.firing { 1.0 } else { 0.0 },
            );
            recorder.record(TraceEvent::new(
                now,
                peer,
                domain,
                TraceKind::Health {
                    rule: edge.rule.into(),
                    firing: edge.firing,
                    value: edge.value,
                },
            ));
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_util::{NodeId, TaskId};

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::disabled();
        r.inc("c", Labels::NONE);
        r.record(TraceEvent::new(
            SimTime::ZERO,
            NodeId::new(1),
            None,
            TraceKind::GossipRound { fanout: 3 },
        ));
        r.task_submitted(TaskId::new(1), SimTime::ZERO);
        r.task_finished(TaskId::new(1), "on_time", SimTime::from_secs(1));
        assert_eq!(r.metrics.counter("c", Labels::NONE), 0);
        assert!(r.trace.is_empty());
        assert_eq!(r.spans.open_count(), 0);
        assert!(r.snapshot().counters.is_empty());
    }

    #[test]
    fn pulse_tick_samples_and_reports_rule_edges() {
        let mut r = Recorder::enabled(64);
        let mut pulse = Pulse::new(
            32,
            &HealthThresholds {
                sustain: 2,
                queue_depth: 10.0,
                ..Default::default()
            },
        );
        let me = NodeId::new(1);
        r.set_gauge(health::pulse_metrics::QUEUE_DEPTH, Labels::NONE, 100.0);
        assert!(pulse.tick(SimTime::ZERO, &mut r, me, None).is_empty());
        let edges = pulse.tick(SimTime::from_secs(1), &mut r, me, None);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].rule, "queue_saturated");
        assert!(pulse.evaluator.any_firing());
        assert_eq!(
            r.metrics
                .counter(HEALTH_ALERTS_TOTAL, Labels::kind("queue_saturated")),
            1
        );
        assert_eq!(r.trace.count_of("health"), 1);
        // Recovery clears the rule and traces the clear edge.
        r.set_gauge(health::pulse_metrics::QUEUE_DEPTH, Labels::NONE, 0.0);
        let edges = pulse.tick(SimTime::from_secs(2), &mut r, me, None);
        assert_eq!(edges.len(), 1);
        assert!(!edges[0].firing);
        assert_eq!(
            r.metrics
                .gauge(HEALTH_FIRING, Labels::kind("queue_saturated")),
            Some(0.0)
        );
        assert_eq!(pulse.store.samples_taken(), 3);
    }

    #[test]
    fn enabled_recorder_records_everything() {
        let mut r = Recorder::enabled(8);
        r.inc("c", Labels::NONE);
        r.record(TraceEvent::new(
            SimTime::ZERO,
            NodeId::new(1),
            None,
            TraceKind::GossipRound { fanout: 3 },
        ));
        r.task_submitted(TaskId::new(1), SimTime::ZERO);
        r.task_phase(TaskId::new(1), TaskPhase::Stream, SimTime::from_millis(5));
        r.task_finished(TaskId::new(1), "on_time", SimTime::from_secs(1));
        assert_eq!(r.metrics.counter("c", Labels::NONE), 1);
        assert_eq!(r.trace.len(), 1);
        let snap = r.snapshot();
        assert!(snap
            .histogram("task_total_seconds{kind=\"on_time\"}")
            .is_some());
    }
}
