//! Declarative health rules evaluated over retained series.
//!
//! A [`HealthRule`] names a metric, a [`SeriesKind`] and a [`Predicate`];
//! the [`HealthEvaluator`] re-checks every rule after each sample tick and
//! reports *transitions* (rule started / stopped firing) so the driver can
//! emit one `health` trace event and bump one `health_alerts_total`
//! counter per edge rather than per tick. The full current state is
//! exported as serialisable [`HealthStatus`] rows for the status wire.
//!
//! Rules read series only through [`SeriesStore::window_sum`], which
//! aligns labelled series by sample seq — so e.g. the allocator cache rule
//! sums hits across all domains without caring how many RMs exist.

use serde::{Deserialize, Serialize};

use crate::series::{SeriesKind, SeriesStore};

/// Metric names the pulse driver (runtime loop or sim harness) publishes
/// as gauges each tick, purpose-built for the standard rules.
pub mod pulse_metrics {
    /// 1.0 when the node currently knows a resource manager, else 0.0.
    pub const HAS_RM: &str = "pulse_has_rm";
    /// Seconds since the node last heard from its RM (0 for the RM itself).
    pub const RM_SILENCE_SECS: &str = "pulse_rm_silence_secs";
    /// Seconds since the last gossip digest arrived (0 until the first).
    pub const GOSSIP_AGE_SECS: &str = "pulse_gossip_age_secs";
    /// Mailbox / DES queue depth at sample time.
    pub const QUEUE_DEPTH: &str = "pulse_queue_depth";
    /// Cumulative transport reconnect count, published as a gauge the
    /// driver copies from the transport's counters each tick.
    pub const LINK_RECONNECTS: &str = "pulse_link_reconnects";
}

/// Counter bumped (with `kind=<rule>`) each time a rule starts firing.
pub const HEALTH_ALERTS_TOTAL: &str = "health_alerts_total";
/// Gauge (with `kind=<rule>`) holding 1.0 while a rule fires.
pub const HEALTH_FIRING: &str = "health_firing";

/// Threshold test applied to a rule's summed series window.
#[derive(Debug, Clone, Copy)]
pub enum Predicate {
    /// Fires when the last `sustain` samples all exceed `threshold`.
    Above {
        /// Level the samples must exceed.
        threshold: f64,
        /// Consecutive breaching samples required.
        sustain: usize,
    },
    /// Fires when the last `sustain` samples all fall below `threshold`.
    Below {
        /// Level the samples must stay under.
        threshold: f64,
        /// Consecutive breaching samples required.
        sustain: usize,
    },
    /// Fires when the per-tick growth over the last `window` samples
    /// exceeds `threshold` (for cumulative counters, e.g. link flaps).
    RateAbove {
        /// Growth per tick the window average must exceed.
        threshold: f64,
        /// Ticks the rate is averaged over.
        window: usize,
    },
    /// Fires when `metric / (metric + other)` over the growth in the last
    /// `window` samples drops below `threshold`, once at least
    /// `min_events` events accumulated in the window (hit-rate collapse).
    RatioBelow {
        /// The complementary counter (e.g. misses to the rule's hits).
        other: &'static str,
        /// Ratio below which the rule fires.
        threshold: f64,
        /// Ticks the ratio is computed over.
        window: usize,
        /// Combined in-window events required before judging.
        min_events: f64,
    },
}

impl Predicate {
    /// The numeric threshold, for display alongside the observed value.
    pub fn threshold(&self) -> f64 {
        match self {
            Predicate::Above { threshold, .. }
            | Predicate::Below { threshold, .. }
            | Predicate::RateAbove { threshold, .. }
            | Predicate::RatioBelow { threshold, .. } => *threshold,
        }
    }
}

/// One named health rule over one metric's series.
#[derive(Debug, Clone)]
pub struct HealthRule {
    /// Stable rule identifier (`rm_stale`, `queue_saturated`, ...).
    pub name: &'static str,
    /// Metric name the rule reads (summed across labels).
    pub metric: &'static str,
    /// Which series of that metric.
    pub kind: SeriesKind,
    /// Human-readable reason code attached to alerts.
    pub reason: &'static str,
    /// The threshold test.
    pub predicate: Predicate,
}

impl HealthRule {
    /// Evaluates the rule against the store. Returns `None` when the
    /// metric has no series yet or too few samples to judge — which is
    /// treated as healthy (rules must not fire during warm-up).
    fn evaluate(&self, store: &SeriesStore) -> Option<(bool, f64)> {
        match self.predicate {
            Predicate::Above { threshold, sustain } => {
                let w = store.window_sum(self.metric, self.kind, sustain);
                if w.len() < sustain {
                    return None;
                }
                Some((w.iter().all(|v| *v > threshold), *w.last().unwrap()))
            }
            Predicate::Below { threshold, sustain } => {
                let w = store.window_sum(self.metric, self.kind, sustain);
                if w.len() < sustain {
                    return None;
                }
                Some((w.iter().all(|v| *v < threshold), *w.last().unwrap()))
            }
            Predicate::RateAbove { threshold, window } => {
                let w = store.window_sum(self.metric, self.kind, window + 1);
                if w.len() < 2 {
                    return None;
                }
                let rate = (w.last().unwrap() - w.first().unwrap()) / (w.len() - 1) as f64;
                Some((rate > threshold, rate))
            }
            Predicate::RatioBelow {
                other,
                threshold,
                window,
                min_events,
            } => {
                let hits = store.window_sum(self.metric, self.kind, window + 1);
                let misses = store.window_sum(other, self.kind, window + 1);
                if hits.len() < 2 || misses.len() < 2 {
                    return None;
                }
                let dh = hits.last().unwrap() - hits.first().unwrap();
                let dm = misses.last().unwrap() - misses.first().unwrap();
                let total = dh + dm;
                if total < min_events {
                    return None;
                }
                let ratio = dh / total;
                Some((ratio < threshold, ratio))
            }
        }
    }
}

/// Tunable thresholds for the standard rule set. Defaults suit the sim
/// harness (1 s ticks); live drivers tighten them to their pulse cadence.
#[derive(Debug, Clone, Copy)]
pub struct HealthThresholds {
    /// Consecutive ticks a level test must hold before firing.
    pub sustain: usize,
    /// Window (ticks) for rate and ratio rules.
    pub window: usize,
    /// RM silence (seconds) beyond which the RM counts as stale.
    pub rm_silence_secs: f64,
    /// Gossip digest age (seconds) beyond which gossip counts as stale.
    pub gossip_age_secs: f64,
    /// Queue depth beyond which the mailbox/DES queue counts saturated.
    pub queue_depth: f64,
    /// Allocator cache hit rate below which the cache has collapsed.
    pub cache_hit_rate: f64,
    /// Cache lookups required in-window before the ratio rule judges.
    pub min_cache_events: f64,
    /// Link reconnects per tick beyond which links count as flapping.
    pub link_flap_rate: f64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        HealthThresholds {
            sustain: 3,
            window: 10,
            rm_silence_secs: 5.0,
            gossip_age_secs: 30.0,
            queue_depth: 10_000.0,
            cache_hit_rate: 0.1,
            min_cache_events: 50.0,
            link_flap_rate: 1.0,
        }
    }
}

/// The standard rule set from the issue: election stalled, RM / gossip
/// staleness, queue saturation, cache hit-rate collapse, link flapping.
pub fn standard_rules(t: &HealthThresholds) -> Vec<HealthRule> {
    vec![
        HealthRule {
            name: "election_stalled",
            metric: pulse_metrics::HAS_RM,
            kind: SeriesKind::Gauge,
            reason: "no resource manager elected",
            predicate: Predicate::Below {
                threshold: 0.5,
                sustain: t.sustain,
            },
        },
        HealthRule {
            name: "rm_stale",
            metric: pulse_metrics::RM_SILENCE_SECS,
            kind: SeriesKind::Gauge,
            reason: "resource manager silent beyond threshold",
            predicate: Predicate::Above {
                threshold: t.rm_silence_secs,
                sustain: t.sustain,
            },
        },
        HealthRule {
            name: "gossip_stale",
            metric: pulse_metrics::GOSSIP_AGE_SECS,
            kind: SeriesKind::Gauge,
            reason: "inter-domain gossip digest stale",
            predicate: Predicate::Above {
                threshold: t.gossip_age_secs,
                sustain: t.sustain,
            },
        },
        HealthRule {
            name: "queue_saturated",
            metric: pulse_metrics::QUEUE_DEPTH,
            kind: SeriesKind::Gauge,
            reason: "event queue depth sustained above threshold",
            predicate: Predicate::Above {
                threshold: t.queue_depth,
                sustain: t.sustain,
            },
        },
        HealthRule {
            name: "cache_collapse",
            metric: "alloc_cache_hits",
            kind: SeriesKind::Counter,
            reason: "allocator path-cache hit rate collapsed",
            predicate: Predicate::RatioBelow {
                other: "alloc_cache_misses",
                threshold: t.cache_hit_rate,
                window: t.window,
                min_events: t.min_cache_events,
            },
        },
        HealthRule {
            name: "link_flapping",
            metric: pulse_metrics::LINK_RECONNECTS,
            kind: SeriesKind::Gauge,
            reason: "transport links reconnecting repeatedly",
            predicate: Predicate::RateAbove {
                threshold: t.link_flap_rate,
                window: t.window,
            },
        },
    ]
}

/// Serialisable snapshot of one rule's current state — the wire shape
/// carried in `StatusReport.health` and printed by `arm health`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthStatus {
    /// Rule identifier.
    pub rule: String,
    /// Reason code shown when firing.
    pub reason: String,
    /// Whether the rule currently fires.
    pub firing: bool,
    /// Last observed value the predicate judged.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// Sample seq at which the current firing episode started (0 if not
    /// firing).
    #[serde(default)]
    pub since_seq: u64,
}

/// A rule edge produced by one evaluation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthTransition {
    /// Rule identifier.
    pub rule: &'static str,
    /// Reason code.
    pub reason: &'static str,
    /// `true` on raise, `false` on clear.
    pub firing: bool,
    /// Observed value at the edge.
    pub value: f64,
}

/// Evaluates a rule set against a [`SeriesStore`], tracking firing state.
#[derive(Debug, Clone)]
pub struct HealthEvaluator {
    rules: Vec<HealthRule>,
    firing: Vec<bool>,
    since: Vec<u64>,
    last_value: Vec<f64>,
}

impl HealthEvaluator {
    /// Creates an evaluator over `rules`, all initially healthy.
    pub fn new(rules: Vec<HealthRule>) -> Self {
        let n = rules.len();
        HealthEvaluator {
            rules,
            firing: vec![false; n],
            since: vec![0; n],
            last_value: vec![0.0; n],
        }
    }

    /// Standard rule set with the given thresholds.
    pub fn standard(thresholds: &HealthThresholds) -> Self {
        HealthEvaluator::new(standard_rules(thresholds))
    }

    /// Re-evaluates every rule; returns only the edges (raise / clear).
    pub fn evaluate(&mut self, store: &SeriesStore) -> Vec<HealthTransition> {
        let mut edges = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let (firing, value) = rule.evaluate(store).unwrap_or((false, 0.0));
            self.last_value[i] = value;
            if firing != self.firing[i] {
                self.firing[i] = firing;
                self.since[i] = if firing { store.next_seq() } else { 0 };
                edges.push(HealthTransition {
                    rule: rule.name,
                    reason: rule.reason,
                    firing,
                    value,
                });
            }
        }
        edges
    }

    /// Whether any rule currently fires.
    pub fn any_firing(&self) -> bool {
        self.firing.iter().any(|f| *f)
    }

    /// Full current state, one row per rule.
    pub fn statuses(&self) -> Vec<HealthStatus> {
        self.rules
            .iter()
            .enumerate()
            .map(|(i, rule)| HealthStatus {
                rule: rule.name.to_string(),
                reason: rule.reason.to_string(),
                firing: self.firing[i],
                value: self.last_value[i],
                threshold: rule.predicate.threshold(),
                since_seq: self.since[i],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Labels, MetricsRegistry};
    use arm_util::SimTime;

    fn tick(store: &mut SeriesStore, reg: &MetricsRegistry, i: u64) {
        store.sample(SimTime::from_secs(i), reg);
    }

    #[test]
    fn above_rule_needs_sustained_breach_and_clears_on_recovery() {
        let mut reg = MetricsRegistry::new();
        let mut store = SeriesStore::new(32);
        let mut eval = HealthEvaluator::new(vec![HealthRule {
            name: "queue_saturated",
            metric: pulse_metrics::QUEUE_DEPTH,
            kind: SeriesKind::Gauge,
            reason: "saturated",
            predicate: Predicate::Above {
                threshold: 100.0,
                sustain: 2,
            },
        }]);
        reg.set_gauge(pulse_metrics::QUEUE_DEPTH, Labels::NONE, 500.0);
        tick(&mut store, &reg, 0);
        assert!(eval.evaluate(&store).is_empty(), "one breach must not fire");
        tick(&mut store, &reg, 1);
        let edges = eval.evaluate(&store);
        assert_eq!(edges.len(), 1);
        assert!(edges[0].firing);
        assert!(eval.any_firing());
        assert!(eval.statuses()[0].since_seq > 0);
        reg.set_gauge(pulse_metrics::QUEUE_DEPTH, Labels::NONE, 1.0);
        tick(&mut store, &reg, 2);
        let edges = eval.evaluate(&store);
        assert_eq!(edges.len(), 1);
        assert!(!edges[0].firing);
        assert!(!eval.any_firing());
    }

    #[test]
    fn missing_metric_counts_as_healthy() {
        let store = SeriesStore::new(8);
        let mut eval = HealthEvaluator::standard(&HealthThresholds::default());
        assert!(eval.evaluate(&store).is_empty());
        assert!(!eval.any_firing());
        assert_eq!(
            eval.statuses().len(),
            standard_rules(&Default::default()).len()
        );
    }

    #[test]
    fn ratio_rule_waits_for_min_events_then_detects_collapse() {
        let mut reg = MetricsRegistry::new();
        let mut store = SeriesStore::new(32);
        let mut eval = HealthEvaluator::new(vec![HealthRule {
            name: "cache_collapse",
            metric: "alloc_cache_hits",
            kind: SeriesKind::Counter,
            reason: "collapse",
            predicate: Predicate::RatioBelow {
                other: "alloc_cache_misses",
                threshold: 0.5,
                window: 4,
                min_events: 10.0,
            },
        }]);
        reg.add("alloc_cache_hits", Labels::NONE, 1);
        reg.add("alloc_cache_misses", Labels::NONE, 1);
        tick(&mut store, &reg, 0);
        tick(&mut store, &reg, 1);
        assert!(eval.evaluate(&store).is_empty(), "below min_events");
        reg.add("alloc_cache_misses", Labels::NONE, 50);
        tick(&mut store, &reg, 2);
        let edges = eval.evaluate(&store);
        assert_eq!(edges.len(), 1);
        assert!(edges[0].firing);
        assert!(edges[0].value < 0.5);
    }

    #[test]
    fn rate_rule_fires_on_link_flaps() {
        let mut reg = MetricsRegistry::new();
        let mut store = SeriesStore::new(32);
        let mut eval = HealthEvaluator::new(vec![HealthRule {
            name: "link_flapping",
            metric: pulse_metrics::LINK_RECONNECTS,
            kind: SeriesKind::Counter,
            reason: "flapping",
            predicate: Predicate::RateAbove {
                threshold: 1.0,
                window: 4,
            },
        }]);
        reg.add(pulse_metrics::LINK_RECONNECTS, Labels::NONE, 0);
        tick(&mut store, &reg, 0);
        for i in 1..4 {
            reg.add(pulse_metrics::LINK_RECONNECTS, Labels::NONE, 5);
            tick(&mut store, &reg, i);
        }
        let edges = eval.evaluate(&store);
        assert_eq!(edges.len(), 1);
        assert!(edges[0].firing);
        assert!(edges[0].value > 1.0);
    }

    #[test]
    fn statuses_serialise_to_json() {
        let eval = HealthEvaluator::standard(&HealthThresholds::default());
        let text = serde_json::to_string(&eval.statuses()).unwrap();
        let back: Vec<HealthStatus> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, eval.statuses());
    }
}
