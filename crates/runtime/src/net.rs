//! Networked runtime: the same sans-I/O `PeerNode` state machines driven by
//! an [`arm_wire::Transport`] instead of in-process channels.
//!
//! The event loop is identical to the channel runtime (`peer_main` in the
//! crate root): one thread per peer, a min-heap of due timers, wall-clock
//! virtual time. Only the medium differs —
//!
//! * `Action::Send` goes through [`Transport::send`] (frames over TCP, or
//!   the deterministic in-memory hub in tests);
//! * inbound frames arrive on transport reader threads and are forwarded
//!   into the peer's mailbox by the sink from [`NetMailbox::sink`].
//!
//! [`NetCluster`] is the convenience harness behind `arm cluster`: it binds
//! one [`TcpTransport`] per peer on loopback, pre-seeds every routing book
//! (a stand-in for out-of-band discovery), dials each peer's bootstrap, and
//! runs all peers against a shared clock and telemetry sink.

use crate::{handle_actions, Delivery, PeerSpawn, Telemetry, TimerEntry};
use arm_core::{Action, Event, HandleProfiler, PeerNode, ProtocolConfig, Role};
use arm_model::TaskSpec;
use arm_store::snapshot::node_phase_tag;
use arm_store::{Intent, NodePhase, Store, StoreSnapshot, SNAPSHOT_FORMAT};
use arm_telemetry::{
    health::pulse_metrics, HealthThresholds, Labels, Pulse, Recorder, SeriesStore, TraceEvent,
    TraceKind,
};
use arm_util::{DomainId, NodeId, SimTime};
use arm_wire::{
    InboundSink, StatusReport, StatusRequest, TcpOptions, TcpTransport, Transport, TransportStats,
};
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::BinaryHeap;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Trace-ring capacity of each live peer's flight recorder: big enough to
/// hold a whole task timeline plus ambient chatter, small enough to bound
/// memory on long-lived nodes (overflow bumps `traces_dropped`).
pub const TRACE_RING_CAPACITY: usize = 4096;

/// Shared wall-clock virtual time source (same convention as the channel
/// runtime: `SimTime` = time elapsed since the clock was created).
#[derive(Debug, Clone)]
pub struct NetClock {
    epoch: Instant,
}

impl NetClock {
    /// Starts the clock now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }

    /// Virtual time elapsed since the clock started.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

impl Default for NetClock {
    fn default() -> Self {
        Self::new()
    }
}

/// A peer's inbound mailbox, created *before* its transport so the
/// transport's sink can forward into it.
pub struct NetMailbox {
    clock: NetClock,
    tx: Sender<Delivery>,
    rx: Receiver<Delivery>,
}

impl NetMailbox {
    /// Creates an empty mailbox on the given clock.
    pub fn new(clock: NetClock) -> Self {
        let (tx, rx) = unbounded();
        Self { clock, tx, rx }
    }

    /// An [`InboundSink`] for transport construction: stamps each inbound
    /// protocol message with the current virtual time and enqueues it.
    pub fn sink(&self) -> InboundSink {
        let tx = self.tx.clone();
        let clock = self.clock.clone();
        Box::new(move |from, msg, ctx| {
            let _ = tx.send(Delivery::At(clock.now(), Event::Msg { from, msg, ctx }));
        })
    }
}

/// Continuously-updated introspection state of one live peer, shared
/// between its event loop (writer) and the transport's status provider
/// (reader, on transport reader threads).
///
/// This is the server side of the `StatusRequest`/`StatusReport` plane:
/// the peer loop refreshes the summary after every handled event batch and
/// feeds its flight recorder; [`NodeStatus::report`] freezes it all into
/// one [`StatusReport`] for `arm top` / `arm trace`.
pub struct NodeStatus {
    node: NodeId,
    inner: crate::sync::Lock<StatusInner>,
}

struct StatusInner {
    role: Role,
    domain: Option<DomainId>,
    rm: Option<NodeId>,
    domain_size: Option<u64>,
    sessions: Option<u64>,
    load: f64,
    active_hops: u64,
    recorder: Recorder,
    profiler: HandleProfiler,
    /// The arm-pulse plane, when sampling is configured (`None` = pulse
    /// disabled; scrapes then answer with empty series, like an old node).
    pulse: Option<Pulse>,
}

impl NodeStatus {
    fn new(node: NodeId, tracing: bool, pulse: Option<&PulseConfig>) -> Self {
        Self {
            node,
            inner: crate::sync::mutex(
                "net.inner",
                StatusInner {
                    role: Role::Idle,
                    domain: None,
                    rm: None,
                    domain_size: None,
                    sessions: None,
                    load: 0.0,
                    active_hops: 0,
                    // Pulse sampling reads the recorder's registry, so a
                    // configured pulse keeps the recorder on even without
                    // protocol tracing (the ring then only sees health edges).
                    recorder: if tracing || pulse.is_some() {
                        Recorder::enabled(TRACE_RING_CAPACITY)
                    } else {
                        Recorder::disabled()
                    },
                    profiler: if tracing {
                        HandleProfiler::enabled()
                    } else {
                        HandleProfiler::disabled()
                    },
                    pulse: pulse.map(|cfg| Pulse::new(cfg.capacity, &cfg.thresholds)),
                },
            ),
        }
    }

    /// Refreshes the summary fields from the peer state machine (called by
    /// the peer loop after each handled batch).
    fn update_summary(&self, node: &PeerNode) {
        let mut inner = self.inner.lock();
        inner.role = node.role();
        inner.domain = node.domain();
        inner.rm = node.rm();
        inner.load = node.load();
        inner.active_hops = node.active_hops() as u64;
        let (size, sessions) = match node.rm_state() {
            Some(rm) => (
                Some(rm.members.len() as u64),
                Some(rm.sessions.len() as u64),
            ),
            None => (None, None),
        };
        inner.domain_size = size;
        inner.sessions = sessions;
    }

    /// Ingests one trace event into the flight recorder, advancing task
    /// spans for phase events (mirrors the DES harness).
    fn ingest(&self, ev: &TraceEvent) {
        let mut inner = self.inner.lock();
        if !inner.recorder.is_enabled() {
            return;
        }
        if let TraceKind::TaskPhase { task, phase } = ev.kind {
            inner.recorder.task_phase(task, phase, ev.at);
        }
        inner.recorder.record(ev.clone());
    }

    /// Records one handled message's wall-clock latency.
    fn profile(&self, kind: &'static str, secs: f64) {
        self.inner.lock().profiler.record(kind, secs);
    }

    /// One arm-pulse sampling tick (no-op when pulse is not configured):
    /// publishes the pulse gauges from the live peer state, sweeps the
    /// whole registry into the retained series, and re-evaluates the
    /// health rules — edges land in the flight recorder as `health` trace
    /// events plus the `health_alerts_total` / `health_firing` metrics.
    fn pulse_tick(&self, now: SimTime, node: &PeerNode, queue_depth: usize, reconnects: u64) {
        let mut inner = self.inner.lock();
        // Take the pulse out so the evaluator can borrow the recorder
        // mutably alongside it (both live behind the same lock).
        let Some(mut pulse) = inner.pulse.take() else {
            return;
        };
        let r = &mut inner.recorder;
        r.set_gauge(
            pulse_metrics::HAS_RM,
            Labels::NONE,
            if node.rm().is_some() { 1.0 } else { 0.0 },
        );
        // The RM is never stale to itself; a node without an RM is the
        // election-stalled rule's business, not this gauge's.
        let silence = if node.role() == Role::Rm || node.rm().is_none() {
            0.0
        } else {
            now.saturating_since(node.last_rm_heard()).as_secs_f64()
        };
        r.set_gauge(pulse_metrics::RM_SILENCE_SECS, Labels::NONE, silence);
        // 0 until the first digest: single-domain clusters never gossip
        // and must not trip the staleness rule.
        let gossip_age = node
            .last_gossip_heard()
            .map_or(0.0, |t| now.saturating_since(t).as_secs_f64());
        r.set_gauge(pulse_metrics::GOSSIP_AGE_SECS, Labels::NONE, gossip_age);
        r.set_gauge(pulse_metrics::QUEUE_DEPTH, Labels::NONE, queue_depth as f64);
        r.set_gauge(
            pulse_metrics::LINK_RECONNECTS,
            Labels::NONE,
            reconnects as f64,
        );
        pulse.tick(now, r, self.node, node.domain());
        inner.pulse = Some(pulse);
    }

    /// Freezes everything into one wire-serialisable [`StatusReport`],
    /// answering the request's trace and series-scrape options.
    pub fn report(
        &self,
        request: &StatusRequest,
        transport: TransportStats,
        peers: Vec<(NodeId, String)>,
    ) -> StatusReport {
        let include_trace = request.include_trace;
        let inner = self.inner.lock();
        // Snapshot through a clone so the profiler's histograms appear in
        // the exported metrics without disturbing the live recorder.
        let mut recorder = inner.recorder.clone();
        inner.profiler.export_into(&mut recorder);
        StatusReport {
            node: self.node,
            role: match inner.role {
                Role::Idle => "idle",
                Role::Joining => "joining",
                Role::Member => "member",
                Role::Rm => "rm",
            }
            .to_string(),
            domain: inner.domain,
            rm: inner.rm,
            domain_size: inner.domain_size,
            sessions: inner.sessions,
            load: inner.load,
            active_hops: inner.active_hops,
            open_spans: inner.recorder.spans.open_count() as u64,
            traces_dropped: inner.recorder.trace.dropped(),
            metrics: recorder.snapshot(),
            transport,
            trace: include_trace.then(|| inner.recorder.trace.iter().cloned().collect()),
            series: match (&inner.pulse, request.series_cursor) {
                (Some(pulse), Some(cursor)) => pulse.store.collect_since(cursor),
                _ => Default::default(),
            },
            health: inner
                .pulse
                .as_ref()
                .map(|p| p.evaluator.statuses())
                .unwrap_or_default(),
            peers,
        }
    }
}

/// arm-pulse sampling parameters for a live peer.
#[derive(Debug, Clone)]
pub struct PulseConfig {
    /// Wall interval between sample ticks.
    pub period: Duration,
    /// Retained samples per series.
    pub capacity: usize,
    /// Health-rule thresholds (tune `rm_silence_secs` etc. to the
    /// protocol's heartbeat cadence).
    pub thresholds: HealthThresholds,
}

impl Default for PulseConfig {
    fn default() -> Self {
        Self {
            period: Duration::from_secs(1),
            capacity: SeriesStore::DEFAULT_CAPACITY,
            thresholds: HealthThresholds::default(),
        }
    }
}

/// Durability parameters for a live peer (the `--state-dir` plane).
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Base state directory; each peer persists under `node-<id>/` so one
    /// config can serve a whole in-process cluster.
    pub dir: PathBuf,
    /// Wall interval between compacting snapshots (the WAL is truncated at
    /// each; a crash replays at most one period's worth of intents).
    pub snapshot_period: Duration,
}

impl StoreConfig {
    /// A store rooted at `dir` with the default snapshot cadence.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_period: Duration::from_secs(5),
        }
    }

    /// The subdirectory one peer persists into.
    pub fn node_dir(&self, node: NodeId) -> PathBuf {
        self.dir.join(format!("node-{}", node.raw()))
    }
}

/// Construction parameters for a [`NetPeer`].
#[derive(Debug, Clone)]
pub struct NetPeerConfig {
    /// Middleware protocol configuration.
    pub protocol: ProtocolConfig,
    /// Deterministic seed for the peer's internal randomness.
    pub seed: u64,
    /// Whether the peer emits structured trace events into telemetry.
    pub tracing: bool,
    /// Retained-series sampling and health evaluation (`None` disables the
    /// pulse plane entirely — zero overhead, empty series on scrape).
    pub pulse: Option<PulseConfig>,
    /// Crash-safe state persistence (`None` = in-memory only, the
    /// pre-`--state-dir` behaviour).
    pub store: Option<StoreConfig>,
}

impl Default for NetPeerConfig {
    fn default() -> Self {
        Self {
            protocol: ProtocolConfig::default(),
            seed: 7,
            tracing: true,
            pulse: Some(PulseConfig::default()),
            store: None,
        }
    }
}

/// One live peer: a `PeerNode` state machine on its own thread, reachable
/// through (and sending through) a [`Transport`].
pub struct NetPeer {
    id: NodeId,
    clock: NetClock,
    tx: Sender<Delivery>,
    status: Arc<NodeStatus>,
    handle: Option<JoinHandle<()>>,
}

impl NetPeer {
    /// Starts the peer thread and queues its `Start` event (which kicks off
    /// the §4.1 join protocol toward `spawn.bootstrap`, if any). The
    /// transport must already be able to route to the bootstrap peer — for
    /// TCP, call [`TcpTransport::connect`] first.
    pub fn start(
        mailbox: NetMailbox,
        spawn: PeerSpawn,
        transport: Arc<dyn Transport>,
        config: &NetPeerConfig,
        telemetry: crate::SharedTelemetry,
    ) -> Self {
        let NetMailbox { clock, tx, rx } = mailbox;
        let id = spawn.id;
        tx.send(Delivery::At(
            clock.now(),
            Event::Start {
                bootstrap: spawn.bootstrap,
            },
        ))
        // arm-lint: allow(no-panic) -- rx is alive in this scope, so the send
        // cannot observe a disconnected channel.
        .expect("own mailbox");
        let config = config.clone();
        let thread_clock = clock.clone();
        let status = Arc::new(NodeStatus::new(id, config.tracing, config.pulse.as_ref()));
        let thread_status = Arc::clone(&status);
        // Thread exhaustion at startup: the closure (and with it `rx`) is
        // dropped, every later send on `tx` fails silently, and `stop`/`Drop`
        // have nothing to join — the peer behaves as if it never started.
        let handle = std::thread::Builder::new()
            .name(format!("netpeer-{id}"))
            .spawn(move || {
                net_peer_main(
                    thread_clock,
                    rx,
                    spawn,
                    config,
                    transport,
                    telemetry,
                    thread_status,
                )
            })
            .ok();
        Self {
            id,
            clock,
            tx,
            status,
            handle,
        }
    }

    /// The peer's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The peer's live introspection state (feed it to
    /// [`TcpTransport::set_status_provider`] to serve `StatusRequest`s).
    pub fn status(&self) -> Arc<NodeStatus> {
        Arc::clone(&self.status)
    }

    /// Submits a task at this peer.
    pub fn submit(&self, task: TaskSpec) {
        let _ = self
            .tx
            .send(Delivery::At(self.clock.now(), Event::SubmitTask(task)));
    }

    /// Stops the peer thread, optionally announcing a graceful departure
    /// first, and joins it.
    pub fn stop(mut self, graceful: bool) {
        if graceful {
            let _ = self
                .tx
                .send(Delivery::At(self.clock.now(), Event::Shutdown { graceful }));
        }
        let _ = self.tx.send(Delivery::Stop);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetPeer {
    fn drop(&mut self) {
        let _ = self.tx.send(Delivery::Stop);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The transport-backed twin of `peer_main`: same loop, different medium.
fn net_peer_main(
    clock: NetClock,
    rx: Receiver<Delivery>,
    spawn: PeerSpawn,
    config: NetPeerConfig,
    transport: Arc<dyn Transport>,
    telemetry: crate::SharedTelemetry,
    status: Arc<NodeStatus>,
) {
    let mut node = PeerNode::new(
        spawn.id,
        spawn.capacity,
        spawn.bandwidth_kbps,
        spawn.objects,
        spawn.services,
        config.protocol,
        config.seed,
        clock.now(),
    );
    node.set_tracing(config.tracing);
    let mut pending: BinaryHeap<TimerEntry> = BinaryHeap::new();
    let pulse_period = config.pulse.as_ref().map(|p| p.period);
    let mut next_pulse = pulse_period.map(|p| {
        SimTime::from_micros(clock.now().as_micros().saturating_add(p.as_micros() as u64))
    });

    // Durability plane: open the store (recovering any prior state) before
    // the first event is handled, so a crash-restart boots from its own
    // history instead of a blank slate. An unusable state dir degrades to
    // in-memory-only operation rather than refusing to serve.
    let mut store: Option<Store> = None;
    let mut recovery: Option<(Box<StoreSnapshot>, Vec<Intent>)> = None;
    if let Some(cfg) = &config.store {
        match Store::open(&cfg.node_dir(spawn.id)) {
            Ok((st, recovered)) => {
                if let Some(note) = &recovered.snapshot_note {
                    eprintln!("arm: node {}: {note}", spawn.id);
                }
                if recovered.snapshot.is_some() || !recovered.intents.is_empty() {
                    let snap = recovered.snapshot.map(Box::new).unwrap_or_else(|| {
                        // Crash before the first snapshot: replay the WAL
                        // over a blank pre-join image.
                        Box::new(StoreSnapshot {
                            format: SNAPSHOT_FORMAT,
                            node: spawn.id,
                            phase: node_phase_tag(NodePhase::Idle),
                            domain: None,
                            rm: None,
                            rm_state: None,
                            sessions: Vec::new(),
                            pulse_cursor: 0,
                            wal_seq: 0,
                            clean: false,
                            written_at_us: 0,
                        })
                    });
                    recovery = Some((snap, recovered.intents));
                }
                store = Some(st);
            }
            Err(e) => {
                eprintln!(
                    "arm: node {}: state dir unusable ({e}); running without persistence",
                    spawn.id
                );
            }
        }
    }
    let snapshot_period = store
        .as_ref()
        .and(config.store.as_ref())
        .map(|c| c.snapshot_period);
    let mut next_snapshot = snapshot_period.map(|p| {
        SimTime::from_micros(clock.now().as_micros().saturating_add(p.as_micros() as u64))
    });
    let mut clean_stop = false;

    loop {
        let now = clock.now();
        while pending.peek().is_some_and(|t| t.at <= now) {
            let Some(entry) = pending.pop() else { break };
            // Recovery hijacks the boot event: the queued `Start` becomes a
            // `Recover` carrying the snapshot plus the replayable WAL tail.
            let event = match (entry.event, recovery.take()) {
                (Event::Start { .. }, Some((snapshot, intents))) => {
                    Event::Recover { snapshot, intents }
                }
                (event, leftover) => {
                    recovery = leftover;
                    event
                }
            };
            if let Event::Shutdown { graceful: true } = &event {
                clean_stop = true;
            }
            // Profile the handler by message kind: the state machine itself
            // never sees a wall clock, so the driver times the dispatch.
            let msg_kind = match &event {
                Event::Msg { msg, .. } => Some(msg.kind()),
                _ => None,
            };
            let handle_started = Instant::now();
            let actions = node.on_event(clock.now(), event);
            if let Some(kind) = msg_kind {
                status.profile(kind, handle_started.elapsed().as_secs_f64());
            }
            // All sends of this batch share the node's outbound trace
            // context; trace actions also feed the node's flight recorder.
            let ctx = node.out_ctx();
            for action in &actions {
                if let Action::Trace(ev) = action {
                    status.ingest(ev);
                }
            }
            let at = clock.now();
            handle_actions(
                &telemetry,
                &mut pending,
                spawn.id,
                at,
                actions,
                |to, msg| {
                    if transport.send(to, msg, ctx).is_ok() {
                        telemetry.lock().messages += 1;
                    }
                },
                |intent| {
                    if let Some(st) = store.as_mut() {
                        // An append failure (disk full, dir vanished) loses
                        // WAL coverage but must not take the overlay down;
                        // the next snapshot restores durability.
                        let _ = st.append(&intent);
                    }
                },
            );
            status.update_summary(&node);
        }
        // The arm-pulse sampling tick: driver-timed, so the state machine
        // stays wall-clock-free. Queue depth counts both the undelivered
        // mailbox and the due-timer heap.
        if let (Some(period), Some(due)) = (pulse_period, next_pulse) {
            let now = clock.now();
            if now >= due {
                status.pulse_tick(
                    now,
                    &node,
                    rx.len() + pending.len(),
                    transport.stats().reconnects(),
                );
                next_pulse = Some(SimTime::from_micros(
                    now.as_micros().saturating_add(period.as_micros() as u64),
                ));
            }
        }
        // The durability tick: periodically compact the WAL into a fresh
        // (dirty) snapshot — `clean` is only ever set by the final flush of
        // a graceful stop.
        if let (Some(st), Some(period), Some(due)) =
            (store.as_mut(), snapshot_period, next_snapshot)
        {
            let now = clock.now();
            if now >= due {
                let mut snap = node.store_snapshot(now, 0, false, now.as_micros());
                let _ = st.install_snapshot(&mut snap);
                next_snapshot = Some(SimTime::from_micros(
                    now.as_micros().saturating_add(period.as_micros() as u64),
                ));
            }
        }
        let mut timeout = pending
            .peek()
            .map(|t| {
                Duration::from_micros(t.at.as_micros().saturating_sub(clock.now().as_micros()))
            })
            .unwrap_or(Duration::from_millis(50));
        if let Some(due) = next_pulse {
            let until_pulse =
                Duration::from_micros(due.as_micros().saturating_sub(clock.now().as_micros()));
            timeout = timeout.min(until_pulse);
        }
        if let Some(due) = next_snapshot {
            let until_snapshot =
                Duration::from_micros(due.as_micros().saturating_sub(clock.now().as_micros()));
            timeout = timeout.min(until_snapshot);
        }
        match rx.recv_timeout(timeout.max(Duration::from_micros(100))) {
            Ok(Delivery::At(at, event)) => {
                pending.push(TimerEntry { at, event });
            }
            Ok(Delivery::Stop) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Final flush: a graceful stop compacts everything into one *clean*
    // snapshot, so the next boot starts fresh instead of resuming phases.
    // An abrupt stop flushes nothing — exactly like a crash — and recovery
    // replays the WAL.
    if clean_stop {
        if let Some(st) = store.as_mut() {
            let now = clock.now();
            let mut snap = node.store_snapshot(now, 0, true, now.as_micros());
            let _ = st.install_snapshot(&mut snap);
        }
    }
}

/// A whole overlay of TCP-backed peers in one process: the harness behind
/// `arm cluster` and the loopback integration tests.
pub struct NetCluster {
    clock: NetClock,
    telemetry: crate::SharedTelemetry,
    peers: Vec<(NetPeer, Arc<TcpTransport>)>,
}

impl NetCluster {
    /// Binds one loopback [`TcpTransport`] per spawn spec, seeds all routing
    /// books with every peer's address (out-of-band discovery), dials each
    /// peer's bootstrap, and starts all peer threads.
    pub fn start(
        spawns: Vec<PeerSpawn>,
        config: &NetPeerConfig,
        opts: TcpOptions,
    ) -> Result<Self, arm_wire::TransportError> {
        let clock = NetClock::new();
        let telemetry = crate::shared_telemetry();
        // Bind every transport first so all listen addresses are known.
        let mut bound = Vec::with_capacity(spawns.len());
        for spawn in spawns {
            let mailbox = NetMailbox::new(clock.clone());
            let transport = Arc::new(TcpTransport::bind(
                spawn.id,
                "127.0.0.1:0",
                mailbox.sink(),
                opts.clone(),
            )?);
            bound.push((spawn, mailbox, transport));
        }
        // Full-mesh routing books: in one process we know every address.
        let routes: Vec<(NodeId, String)> = bound
            .iter()
            .map(|(s, _, t)| (s.id, t.listen_addr().to_string()))
            .collect();
        for (spawn, _, transport) in &bound {
            for (node, addr) in &routes {
                if *node != spawn.id {
                    transport.add_route(*node, addr)?;
                }
            }
        }
        // Dial bootstraps (verifies the handshake path), then start peers.
        let addr_of = |node: NodeId| {
            routes
                .iter()
                .find(|(n, _)| *n == node)
                .map(|(_, a)| a.clone())
        };
        let mut peers = Vec::with_capacity(bound.len());
        for (spawn, mailbox, transport) in bound {
            if let Some(addr) = spawn.bootstrap.and_then(addr_of) {
                let remote = transport.connect(&addr)?;
                debug_assert_eq!(Some(remote), spawn.bootstrap);
            }
            let peer = NetPeer::start(
                mailbox,
                spawn,
                Arc::clone(&transport) as Arc<dyn Transport>,
                config,
                Arc::clone(&telemetry),
            );
            // Serve the introspection plane: the provider reads the peer's
            // live status and the transport's own counters. A weak handle
            // avoids a transport → provider → transport cycle.
            let status = peer.status();
            let weak = Arc::downgrade(&transport);
            let book = routes.clone();
            transport.set_status_provider(Box::new(move |req| {
                let stats = weak.upgrade().map(|t| t.stats()).unwrap_or_default();
                status.report(req, stats, book.clone())
            }));
            peers.push((peer, transport));
        }
        Ok(Self {
            clock,
            telemetry,
            peers,
        })
    }

    /// The cluster's shared clock.
    pub fn clock(&self) -> &NetClock {
        &self.clock
    }

    /// Ids of all peers, in spawn order.
    pub fn ids(&self) -> Vec<NodeId> {
        self.peers.iter().map(|(p, _)| p.id()).collect()
    }

    /// Listen addresses of all peers, in spawn order (for observers:
    /// `arm top` / `arm trace` dial these).
    pub fn listen_addrs(&self) -> Vec<(NodeId, String)> {
        self.peers
            .iter()
            .map(|(p, t)| (p.id(), t.listen_addr().to_string()))
            .collect()
    }

    /// Submits a task at the given peer.
    pub fn submit(&self, node: NodeId, task: TaskSpec) {
        if let Some((peer, _)) = self.peers.iter().find(|(p, _)| p.id() == node) {
            peer.submit(task);
        }
    }

    /// Snapshot of the shared telemetry.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.lock().clone()
    }

    /// Transport counters for every peer (ordered by spawn order).
    pub fn transport_stats(&self) -> Vec<TransportStats> {
        self.peers.iter().map(|(_, t)| t.stats()).collect()
    }

    /// Kills the live connection from `from` to `to` (fault injection); the
    /// link reconnects with backoff on the next send.
    pub fn kill_link(&self, from: NodeId, to: NodeId) {
        if let Some((_, t)) = self.peers.iter().find(|(p, _)| p.id() == from) {
            t.kill_link(to);
        }
    }

    /// Permanently stops one peer and tears down its transport (fault
    /// injection: a crash, not a graceful leave — unlike [`kill_link`],
    /// nothing redials). Returns false if the peer is not in the cluster.
    ///
    /// [`kill_link`]: NetCluster::kill_link
    pub fn stop_peer(&mut self, node: NodeId) -> bool {
        let Some(idx) = self.peers.iter().position(|(p, _)| p.id() == node) else {
            return false;
        };
        let (peer, transport) = self.peers.remove(idx);
        peer.stop(false);
        transport.shutdown();
        true
    }

    /// (Re)starts a peer: binds a fresh loopback transport, refreshes the
    /// routing mesh in both directions (the peer's old address, if any, is
    /// dead — live links redial the new one on their next write), dials the
    /// bootstrap, and starts the peer thread. With a [`StoreConfig`] in
    /// `config`, the peer first recovers from its snapshot + WAL under the
    /// state dir — this is the crash-recovery path [`stop_peer`] sets up.
    ///
    /// [`stop_peer`]: NetCluster::stop_peer
    pub fn restart_peer(
        &mut self,
        spawn: PeerSpawn,
        config: &NetPeerConfig,
        opts: TcpOptions,
    ) -> Result<(), arm_wire::TransportError> {
        let mailbox = NetMailbox::new(self.clock.clone());
        let transport = Arc::new(TcpTransport::bind(
            spawn.id,
            "127.0.0.1:0",
            mailbox.sink(),
            opts,
        )?);
        let addr = transport.listen_addr().to_string();
        for (peer, t) in &self.peers {
            transport.add_route(peer.id(), &t.listen_addr().to_string())?;
            t.add_route(spawn.id, &addr)?;
        }
        let bootstrap_addr = spawn.bootstrap.and_then(|b| {
            self.peers
                .iter()
                .find(|(p, _)| p.id() == b)
                .map(|(_, t)| t.listen_addr().to_string())
        });
        if let Some(baddr) = bootstrap_addr {
            let remote = transport.connect(&baddr)?;
            debug_assert_eq!(Some(remote), spawn.bootstrap);
        }
        let peer = NetPeer::start(
            mailbox,
            spawn,
            Arc::clone(&transport) as Arc<dyn Transport>,
            config,
            Arc::clone(&self.telemetry),
        );
        let status = peer.status();
        let weak = Arc::downgrade(&transport);
        let mut book = self.listen_addrs();
        book.push((peer.id(), addr));
        transport.set_status_provider(Box::new(move |req| {
            let stats = weak.upgrade().map(|t| t.stats()).unwrap_or_default();
            status.report(req, stats, book.clone())
        }));
        self.peers.push((peer, transport));
        Ok(())
    }

    /// Stops all peers (gracefully), then tears down all transports.
    pub fn shutdown(self) -> Vec<TransportStats> {
        let stats = self.transport_stats();
        for (peer, transport) in self.peers {
            peer.stop(false);
            transport.shutdown();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_model::{Codec, MediaFormat, MediaObject, QosSpec, Resolution, ServiceSpec};
    use arm_util::{ObjectId, ServiceId, SimDuration, TaskId};

    fn fast_protocol() -> ProtocolConfig {
        ProtocolConfig {
            heartbeat_period: SimDuration::from_millis(50),
            heartbeat_timeout: SimDuration::from_millis(200),
            report_period: SimDuration::from_millis(50),
            gossip_period: SimDuration::from_millis(200),
            backup_period: SimDuration::from_millis(100),
            adapt_period: SimDuration::from_millis(200),
            join_timeout: SimDuration::from_millis(200),
            compose_timeout: SimDuration::from_millis(500),
            sched_poll: SimDuration::from_millis(5),
            ..ProtocolConfig::default()
        }
    }

    fn spawn_spec(id: u64, bootstrap: Option<u64>) -> PeerSpawn {
        PeerSpawn {
            id: NodeId::new(id),
            capacity: 100.0,
            bandwidth_kbps: 10_000,
            objects: vec![],
            services: vec![],
            bootstrap: bootstrap.map(NodeId::new),
        }
    }

    #[test]
    fn overlay_forms_over_tcp() {
        let config = NetPeerConfig {
            protocol: fast_protocol(),
            ..NetPeerConfig::default()
        };
        let spawns = (1..=4u64)
            .map(|i| spawn_spec(i, (i > 1).then_some(1)))
            .collect();
        let cluster = NetCluster::start(spawns, &config, TcpOptions::default()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let t = cluster.telemetry();
            if t.messages > 20 {
                break;
            }
            assert!(Instant::now() < deadline, "no TCP chatter: {t:?}");
            std::thread::sleep(Duration::from_millis(20));
        }
        let stats = cluster.shutdown();
        assert!(stats.iter().all(|s| s.decode_errors == 0));
        assert!(stats.iter().map(|s| s.msgs_out()).sum::<u64>() > 20);
    }

    #[test]
    fn task_completes_over_tcp() {
        let intermediate = MediaFormat::new(Codec::Mpeg2, Resolution::VGA, 256);
        let config = NetPeerConfig {
            protocol: fast_protocol(),
            ..NetPeerConfig::default()
        };
        let mut source = spawn_spec(2, Some(1));
        source.objects = vec![MediaObject::new(
            ObjectId::new(1),
            "net-movie",
            MediaFormat::paper_source(),
            60.0,
        )];
        source.services = vec![ServiceSpec::transcoder(
            ServiceId::new(1),
            MediaFormat::paper_source(),
            intermediate,
            5.0,
        )];
        let mut transcoder = spawn_spec(3, Some(1));
        transcoder.services = vec![ServiceSpec::transcoder(
            ServiceId::new(2),
            intermediate,
            MediaFormat::paper_target(),
            5.0,
        )];
        let spawns = vec![
            spawn_spec(1, None),
            source,
            transcoder,
            spawn_spec(4, Some(1)),
        ];
        let cluster = NetCluster::start(spawns, &config, TcpOptions::default()).unwrap();
        std::thread::sleep(Duration::from_millis(400));
        cluster.submit(
            NodeId::new(4),
            TaskSpec {
                id: TaskId::new(1),
                name: "net-movie".into(),
                requester: NodeId::new(4),
                initial_format: MediaFormat::paper_source(),
                acceptable_formats: vec![MediaFormat::paper_target()],
                qos: QosSpec::with_deadline(SimDuration::from_secs(5)),
                submitted_at: SimTime::ZERO,
                session_secs: 1.0,
            },
        );
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            let t = cluster.telemetry();
            if t.replies
                .iter()
                .any(|(id, ok, _)| *id == TaskId::new(1) && *ok)
            {
                break;
            }
            assert!(Instant::now() < deadline, "TCP task timed out: {t:?}");
            std::thread::sleep(Duration::from_millis(20));
        }
        let stats = cluster.shutdown();
        assert!(stats.iter().all(|s| s.decode_errors == 0), "{stats:?}");
    }

    #[test]
    fn cluster_serves_status_reports() {
        use arm_wire::query_status;
        let config = NetPeerConfig {
            protocol: fast_protocol(),
            ..NetPeerConfig::default()
        };
        let spawns = (1..=3u64)
            .map(|i| spawn_spec(i, (i > 1).then_some(1)))
            .collect();
        let cluster = NetCluster::start(spawns, &config, TcpOptions::default()).unwrap();
        let addrs = cluster.listen_addrs();
        assert_eq!(addrs.len(), 3);
        // Wait for the overlay to form, then interrogate the founder.
        let deadline = Instant::now() + Duration::from_secs(10);
        let report = loop {
            let report =
                query_status(&addrs[0].1, NodeId::new(99), true, Duration::from_secs(2)).unwrap();
            if report.role == "rm" && report.domain_size == Some(3) {
                break report;
            }
            assert!(
                Instant::now() < deadline,
                "overlay never formed: {report:?}"
            );
            std::thread::sleep(Duration::from_millis(30));
        };
        assert_eq!(report.node, NodeId::new(1));
        assert_eq!(report.rm, Some(NodeId::new(1)));
        // The flight recorder was requested and carries protocol events.
        let trace = report.trace.as_deref().unwrap_or_default();
        assert!(!trace.is_empty(), "rm ring is empty");
        // The address book covers the whole cluster (observer discovery).
        assert_eq!(report.peers.len(), 3);
        // Handler profiling surfaces per-kind latency series.
        assert!(
            report
                .metrics
                .histograms
                .iter()
                .any(|h| h.key.starts_with(arm_core::HANDLE_METRIC)),
            "no handle_seconds series in {:?}",
            report.metrics.histograms.len()
        );
        cluster.shutdown();
    }

    #[test]
    fn net_peer_over_in_memory_transport() {
        use arm_wire::MemHub;
        let config = NetPeerConfig {
            protocol: fast_protocol(),
            ..NetPeerConfig::default()
        };
        let clock = NetClock::new();
        let telemetry = crate::shared_telemetry();
        let hub = MemHub::new();
        let mut peers = Vec::new();
        for i in 1..=3u64 {
            let mailbox = NetMailbox::new(clock.clone());
            let transport = Arc::new(hub.register(NodeId::new(i), mailbox.sink()));
            peers.push(NetPeer::start(
                mailbox,
                spawn_spec(i, (i > 1).then_some(1)),
                transport as Arc<dyn Transport>,
                &config,
                Arc::clone(&telemetry),
            ));
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if telemetry.lock().messages > 10 {
                break;
            }
            assert!(Instant::now() < deadline, "no in-memory chatter");
            std::thread::sleep(Duration::from_millis(20));
        }
        for p in peers {
            p.stop(false);
        }
    }
}
