//! Lock types used by the runtime registry and networked peers.
//!
//! Normal builds use `parking_lot`. With the `lock-witness` feature the
//! locks become `arm-util`'s instrumented witness wrappers, recording the
//! runtime lock-acquisition order under static names matching the nodes
//! `arm-lint` infers for the same fields (`"runtime.senders"`,
//! `"runtime.telemetry"`, `"net.inner"`). Call sites are identical in both
//! builds — `.lock()`/`.read()`/`.write()` return guards directly.

#[cfg(not(feature = "lock-witness"))]
mod plain {
    pub type Lock<T> = parking_lot::Mutex<T>;
    pub type Rw<T> = parking_lot::RwLock<T>;

    /// A new mutex; the name is only used by the witness build.
    pub fn mutex<T>(_name: &'static str, value: T) -> Lock<T> {
        parking_lot::Mutex::new(value)
    }

    /// A new rwlock; the name is only used by the witness build.
    pub fn rwlock<T>(_name: &'static str, value: T) -> Rw<T> {
        parking_lot::RwLock::new(value)
    }
}

#[cfg(feature = "lock-witness")]
mod plain {
    pub type Lock<T> = arm_util::lockwitness::WitnessMutex<T>;
    pub type Rw<T> = arm_util::lockwitness::WitnessRwLock<T>;

    /// A new witness mutex recording acquisitions under `name`.
    pub fn mutex<T>(name: &'static str, value: T) -> Lock<T> {
        arm_util::lockwitness::WitnessMutex::new(name, value)
    }

    /// A new witness rwlock recording acquisitions under `name`.
    pub fn rwlock<T>(name: &'static str, value: T) -> Rw<T> {
        arm_util::lockwitness::WitnessRwLock::new(name, value)
    }
}

pub(crate) use plain::{mutex, rwlock, Lock, Rw};
