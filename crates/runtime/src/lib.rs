//! Live threaded runtime: the middleware on real OS threads.
//!
//! The discrete-event simulator (`arm-sim`) gives reproducible
//! experiments; this runtime demonstrates that the *same* sans-I/O state
//! machines are a real concurrent middleware, not just a model. Each peer
//! runs on its own thread as an actor:
//!
//! * protocol messages travel over `crossbeam` channels through a shared
//!   peer registry (an in-process "network" with optional injected
//!   latency),
//! * timers are kept in a per-peer heap and woken with
//!   `recv_timeout`,
//! * virtual time is wall-clock time since runtime start, so the state
//!   machines observe real concurrency, real races and real delays.
//!
//! The async substrate the calibration notes suggested (tokio) is not in
//! the approved crate set; OS threads + channels provide the same
//! decentralized-actor semantics (DESIGN.md §2, substitution 3).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use arm_core::{Action, Event, PeerNode, ProtocolConfig, TimerKind};
use arm_model::task::TaskOutcome;
use arm_model::{MediaObject, ServiceSpec, TaskSpec};
use arm_proto::{Message, TraceCtx};
use arm_telemetry::TraceEvent;
use arm_util::{DomainId, NodeId, SessionId, SimDuration, SimTime, TaskId};
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub mod net;
pub(crate) mod sync;

/// What happened during a run, shared across peer threads.
#[derive(Debug, Default, Clone)]
pub struct Telemetry {
    /// Terminal task outcomes (task, outcome, at).
    pub outcomes: Vec<(TaskId, TaskOutcome, SimTime)>,
    /// Replies received by requesters (task, allocated, at).
    pub replies: Vec<(TaskId, bool, SimTime)>,
    /// Backup promotions (node, domain, at).
    pub promotions: Vec<(NodeId, DomainId, SimTime)>,
    /// Session repairs (session, ok, at).
    pub repairs: Vec<(SessionId, bool, SimTime)>,
    /// Messages delivered through the registry.
    pub messages: u64,
    /// Structured trace events (populated when peers have tracing on,
    /// see [`PeerNode::set_tracing`]).
    pub traces: Vec<TraceEvent>,
}

/// Retention cap for each [`Telemetry`] event series. A long-running
/// overlay emits outcomes/replies/traces forever; when a series reaches
/// the cap the oldest half is dropped so observers keep the recent window
/// without the process growing without bound.
pub const TELEMETRY_CAP: usize = 65_536;

/// Shared handle to a [`Telemetry`] sink, passed to networked peers.
///
/// The lock type is `parking_lot::Mutex` in normal builds and the
/// instrumented witness mutex under the `lock-witness` feature; construct
/// it with [`shared_telemetry`] so the witness name is always set.
pub type SharedTelemetry = Arc<sync::Lock<Telemetry>>;

/// A fresh shared [`Telemetry`] sink (witness name `runtime.telemetry`).
pub fn shared_telemetry() -> SharedTelemetry {
    Arc::new(sync::mutex("runtime.telemetry", Telemetry::default()))
}

/// Appends to a telemetry series, dropping the oldest half at the cap.
fn push_capped<T>(series: &mut Vec<T>, item: T) {
    if series.len() >= TELEMETRY_CAP {
        series.drain(..TELEMETRY_CAP / 2);
    }
    series.push(item);
}

/// A message en route to a peer thread.
enum Delivery {
    /// Deliver `event` once `at` is reached.
    At(SimTime, Event),
    /// Terminate the peer thread.
    Stop,
}

struct Registry {
    epoch: Instant,
    senders: sync::Rw<HashMap<NodeId, Sender<Delivery>>>,
    latency: SimDuration,
    telemetry: sync::Lock<Telemetry>,
}

impl Registry {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

/// Handle to a running overlay of peer threads.
pub struct Runtime {
    registry: Arc<Registry>,
    handles: Vec<(NodeId, JoinHandle<()>)>,
}

/// Runtime construction parameters.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Injected one-way message latency.
    pub latency: SimDuration,
    /// Middleware protocol configuration shared by all peers.
    pub protocol: ProtocolConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            latency: SimDuration::from_millis(2),
            protocol: ProtocolConfig::default(),
        }
    }
}

/// Per-peer spec for spawning.
#[derive(Debug, Clone)]
pub struct PeerSpawn {
    /// Peer id (unique).
    pub id: NodeId,
    /// Processing capacity, work units/second.
    pub capacity: f64,
    /// Link bandwidth, kbps.
    pub bandwidth_kbps: u32,
    /// Hosted media objects.
    pub objects: Vec<MediaObject>,
    /// Offered services.
    pub services: Vec<ServiceSpec>,
    /// Contact peer (`None` founds the overlay).
    pub bootstrap: Option<NodeId>,
}

struct TimerEntry {
    at: SimTime,
    event: Event,
}
impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at) // min-heap
    }
}

impl Runtime {
    /// Creates an empty runtime.
    pub fn new(config: RuntimeConfig) -> (Self, RuntimeConfig) {
        let registry = Arc::new(Registry {
            epoch: Instant::now(),
            senders: sync::rwlock("runtime.senders", HashMap::new()),
            latency: config.latency,
            telemetry: sync::mutex("runtime.telemetry", Telemetry::default()),
        });
        (
            Self {
                registry,
                handles: Vec::new(),
            },
            config,
        )
    }

    /// Spawns a peer thread and starts its join protocol.
    pub fn spawn_peer(&mut self, spawn: PeerSpawn, protocol: &ProtocolConfig, seed: u64) {
        let (tx, rx) = unbounded::<Delivery>();
        self.registry.senders.write().insert(spawn.id, tx.clone());
        let registry = Arc::clone(&self.registry);
        let protocol = protocol.clone();
        let id = spawn.id;
        let now = registry.now();
        tx.send(Delivery::At(
            now,
            Event::Start {
                bootstrap: spawn.bootstrap,
            },
        ))
        // arm-lint: allow(no-panic) -- rx is alive in this scope, so the send
        // cannot observe a disconnected channel.
        .expect("own channel");
        let spawned = std::thread::Builder::new()
            .name(format!("peer-{id}"))
            .spawn(move || peer_main(registry, rx, spawn, protocol, seed));
        match spawned {
            Ok(handle) => self.handles.push((id, handle)),
            // Thread exhaustion at startup: withdraw the peer's mailbox so
            // the rest of the runtime sees it as never having joined.
            Err(_) => {
                self.registry.senders.write().remove(&id);
            }
        }
    }

    /// Submits a task at the given peer.
    pub fn submit(&self, node: NodeId, task: TaskSpec) {
        let now = self.registry.now();
        if let Some(tx) = self.registry.senders.read().get(&node) {
            let _ = tx.send(Delivery::At(now, Event::SubmitTask(task)));
        }
    }

    /// Crashes a peer: its thread stops without announcing departure.
    pub fn crash(&mut self, node: NodeId) {
        if let Some(tx) = self.registry.senders.write().remove(&node) {
            let _ = tx.send(Delivery::Stop);
        }
    }

    /// Gracefully stops a peer (announces departure first).
    pub fn leave(&mut self, node: NodeId) {
        let now = self.registry.now();
        let senders = self.registry.senders.write();
        if let Some(tx) = senders.get(&node) {
            let _ = tx.send(Delivery::At(now, Event::Shutdown { graceful: true }));
            let _ = tx.send(Delivery::Stop);
        }
        drop(senders);
        self.registry.senders.write().remove(&node);
    }

    /// Snapshot of the shared telemetry.
    pub fn telemetry(&self) -> Telemetry {
        self.registry.telemetry.lock().clone()
    }

    /// Wall-clock virtual time since the runtime started.
    pub fn now(&self) -> SimTime {
        self.registry.now()
    }

    /// Stops all peers and joins their threads.
    pub fn shutdown(mut self) {
        {
            let senders = self.registry.senders.write();
            for tx in senders.values() {
                let _ = tx.send(Delivery::Stop);
            }
        }
        self.registry.senders.write().clear();
        for (_, h) in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn peer_main(
    registry: Arc<Registry>,
    rx: Receiver<Delivery>,
    spawn: PeerSpawn,
    protocol: ProtocolConfig,
    seed: u64,
) {
    let mut node = PeerNode::new(
        spawn.id,
        spawn.capacity,
        spawn.bandwidth_kbps,
        spawn.objects,
        spawn.services,
        protocol,
        seed,
        registry.now(),
    );
    // Pending deliveries and timers, ordered by due time.
    let mut pending: BinaryHeap<TimerEntry> = BinaryHeap::new();

    loop {
        // Fire everything due.
        let now = registry.now();
        while pending.peek().is_some_and(|t| t.at <= now) {
            let Some(entry) = pending.pop() else { break };
            let actions = node.on_event(registry.now(), entry.event);
            // All sends of one handling batch share the node's outbound
            // trace context, so causality survives the channel hop.
            let ctx = node.out_ctx();
            if !apply(&registry, &mut pending, spawn.id, actions, ctx) {
                return;
            }
        }
        // Sleep until the next due entry or the next inbound delivery.
        let timeout = pending
            .peek()
            .map(|t| {
                Duration::from_micros(t.at.as_micros().saturating_sub(registry.now().as_micros()))
            })
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout.max(Duration::from_micros(100))) {
            Ok(Delivery::At(at, event)) => {
                pending.push(TimerEntry { at, event });
            }
            Ok(Delivery::Stop) => return,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Executes actions against the in-process registry; returns false if the
/// thread should stop.
fn apply(
    registry: &Arc<Registry>,
    pending: &mut BinaryHeap<TimerEntry>,
    me: NodeId,
    actions: Vec<Action>,
    ctx: TraceCtx,
) -> bool {
    let now = registry.now();
    handle_actions(
        &registry.telemetry,
        pending,
        me,
        now,
        actions,
        |to, msg| {
            let senders = registry.senders.read();
            if let Some(tx) = senders.get(&to) {
                registry.telemetry.lock().messages += 1;
                let _ = tx.send(Delivery::At(
                    now + registry.latency,
                    Event::Msg { from: me, msg, ctx },
                ));
            }
        },
        // The in-process runtime keeps no state dir; durability is the
        // networked runtime's concern.
        |_| {},
    );
    true
}

/// Shared action interpreter for both runtime flavours: records outcomes
/// into `telemetry`, arms timers in `pending`, forwards `Send` actions
/// through the caller's medium (`send` — registry channels for the
/// in-process runtime, a [`arm_wire::Transport`] for the networked one),
/// and hands `Persist` intents to `persist` (the write-ahead log when a
/// `--state-dir` is configured; a no-op otherwise).
fn handle_actions<F, P>(
    telemetry: &sync::Lock<Telemetry>,
    pending: &mut BinaryHeap<TimerEntry>,
    me: NodeId,
    now: SimTime,
    actions: Vec<Action>,
    mut send: F,
    mut persist: P,
) where
    F: FnMut(NodeId, Message),
    P: FnMut(arm_store::Intent),
{
    for action in actions {
        match action {
            Action::Send { to, msg } => send(to, msg),
            Action::Persist(intent) => persist(intent),
            Action::SetTimer { kind, after } => {
                let _: TimerKind = kind;
                pending.push(TimerEntry {
                    at: now + after,
                    event: Event::Timer(kind),
                });
            }
            Action::Outcome {
                task, outcome, at, ..
            } => {
                push_capped(&mut telemetry.lock().outcomes, (task, outcome, at));
            }
            Action::ReplyReceived {
                task,
                allocated,
                at,
            } => {
                push_capped(&mut telemetry.lock().replies, (task, allocated, at));
            }
            Action::Promoted { domain, at } => {
                push_capped(&mut telemetry.lock().promotions, (me, domain, at));
            }
            Action::SessionRepaired { session, ok, at } => {
                push_capped(&mut telemetry.lock().repairs, (session, ok, at));
            }
            Action::SessionReassigned { .. } => {}
            Action::Trace(ev) => {
                push_capped(&mut telemetry.lock().traces, ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_model::{Codec, MediaFormat, QosSpec, Resolution};
    use arm_util::{ObjectId, ServiceId};

    /// Millisecond-scale protocol config so tests finish quickly.
    fn fast_protocol() -> ProtocolConfig {
        ProtocolConfig {
            heartbeat_period: SimDuration::from_millis(50),
            heartbeat_timeout: SimDuration::from_millis(200),
            report_period: SimDuration::from_millis(50),
            gossip_period: SimDuration::from_millis(200),
            backup_period: SimDuration::from_millis(100),
            adapt_period: SimDuration::from_millis(200),
            join_timeout: SimDuration::from_millis(200),
            compose_timeout: SimDuration::from_millis(500),
            sched_poll: SimDuration::from_millis(5),
            ..ProtocolConfig::default()
        }
    }

    fn intermediate() -> MediaFormat {
        MediaFormat::new(Codec::Mpeg2, Resolution::VGA, 256)
    }

    fn spawn_spec(id: u64, bootstrap: Option<u64>) -> PeerSpawn {
        PeerSpawn {
            id: NodeId::new(id),
            capacity: 100.0,
            bandwidth_kbps: 10_000,
            objects: vec![],
            services: vec![],
            bootstrap: bootstrap.map(NodeId::new),
        }
    }

    #[test]
    fn overlay_forms_on_real_threads() {
        let cfg = RuntimeConfig {
            latency: SimDuration::from_millis(1),
            protocol: fast_protocol(),
        };
        let (mut rt, cfg) = Runtime::new(cfg);
        rt.spawn_peer(spawn_spec(1, None), &cfg.protocol, 7);
        std::thread::sleep(Duration::from_millis(50));
        for i in 2..=5u64 {
            rt.spawn_peer(spawn_spec(i, Some(1)), &cfg.protocol, 7);
        }
        std::thread::sleep(Duration::from_millis(600));
        let t = rt.telemetry();
        assert!(t.messages > 10, "protocol chatter on real threads");
        rt.shutdown();
    }

    #[test]
    fn task_completes_end_to_end_live() {
        let cfg = RuntimeConfig {
            latency: SimDuration::from_millis(1),
            protocol: fast_protocol(),
        };
        let (mut rt, cfg) = Runtime::new(cfg);
        rt.spawn_peer(spawn_spec(1, None), &cfg.protocol, 7);
        std::thread::sleep(Duration::from_millis(50));
        let mut source = spawn_spec(2, Some(1));
        source.objects = vec![MediaObject::new(
            ObjectId::new(1),
            "live-movie",
            MediaFormat::paper_source(),
            60.0,
        )];
        source.services = vec![ServiceSpec::transcoder(
            ServiceId::new(1),
            MediaFormat::paper_source(),
            intermediate(),
            5.0,
        )];
        rt.spawn_peer(source, &cfg.protocol, 7);
        let mut transcoder = spawn_spec(3, Some(1));
        transcoder.services = vec![ServiceSpec::transcoder(
            ServiceId::new(2),
            intermediate(),
            MediaFormat::paper_target(),
            5.0,
        )];
        rt.spawn_peer(transcoder, &cfg.protocol, 7);
        rt.spawn_peer(spawn_spec(4, Some(1)), &cfg.protocol, 7);
        std::thread::sleep(Duration::from_millis(300));

        rt.submit(
            NodeId::new(4),
            TaskSpec {
                id: TaskId::new(1),
                name: "live-movie".into(),
                requester: NodeId::new(4),
                initial_format: MediaFormat::paper_source(),
                acceptable_formats: vec![MediaFormat::paper_target()],
                qos: QosSpec::with_deadline(SimDuration::from_secs(5)),
                submitted_at: SimTime::ZERO,
                session_secs: 1.0,
            },
        );
        // Poll for completion.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let t = rt.telemetry();
            if t.replies
                .iter()
                .any(|(id, ok, _)| *id == TaskId::new(1) && *ok)
                && t.outcomes
                    .iter()
                    .any(|(id, o, _)| *id == TaskId::new(1) && o.is_completed())
            {
                break;
            }
            assert!(Instant::now() < deadline, "live task timed out: {t:?}");
            std::thread::sleep(Duration::from_millis(20));
        }
        rt.shutdown();
    }

    #[test]
    fn live_failover_promotes_backup() {
        // Uptime requirement must be tiny for a fast test.
        let mut protocol = fast_protocol();
        protocol.rm_requirements.min_uptime_secs = 0.05;
        let cfg = RuntimeConfig {
            latency: SimDuration::from_millis(1),
            protocol,
        };
        let (mut rt, cfg) = Runtime::new(cfg);
        rt.spawn_peer(spawn_spec(1, None), &cfg.protocol, 7);
        std::thread::sleep(Duration::from_millis(50));
        for i in 2..=4u64 {
            rt.spawn_peer(spawn_spec(i, Some(1)), &cfg.protocol, 7);
        }
        // Let a backup snapshot ship (backup period 100ms).
        std::thread::sleep(Duration::from_millis(500));
        rt.crash(NodeId::new(1));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let t = rt.telemetry();
            if !t.promotions.is_empty() {
                break;
            }
            assert!(Instant::now() < deadline, "no live promotion: {t:?}");
            std::thread::sleep(Duration::from_millis(20));
        }
        rt.shutdown();
    }
}
