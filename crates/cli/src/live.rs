//! `arm node` / `arm cluster`: the middleware as live networked processes.
//!
//! Both subcommands drive the same sans-I/O state machines as `simulate`,
//! but over real TCP sockets via `arm-wire` and the transport-backed
//! runtime in `arm_runtime::net`. `cluster` spins up N peers on loopback in
//! one process and runs the demo workload end-to-end; `node` runs a single
//! peer so a cluster can be assembled by hand across processes.

use arm_core::ProtocolConfig;
use arm_model::{Codec, MediaFormat, MediaObject, QosSpec, Resolution, ServiceSpec, TaskSpec};
use arm_runtime::net::{
    NetClock, NetCluster, NetMailbox, NetPeer, NetPeerConfig, PulseConfig, StoreConfig,
};
use arm_runtime::{PeerSpawn, Telemetry};
use arm_telemetry::Recorder;
use arm_util::{NodeId, ObjectId, ServiceId, SimDuration, SimTime, TaskId};
use arm_wire::{TcpOptions, TcpTransport, Transport, TransportStats};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Millisecond-scale protocol periods so a live demo converges in seconds
/// (the defaults are tuned for the paper's long simulated horizons).
fn live_protocol() -> ProtocolConfig {
    ProtocolConfig {
        heartbeat_period: SimDuration::from_millis(100),
        heartbeat_timeout: SimDuration::from_millis(400),
        report_period: SimDuration::from_millis(100),
        gossip_period: SimDuration::from_millis(400),
        backup_period: SimDuration::from_millis(200),
        adapt_period: SimDuration::from_millis(400),
        join_timeout: SimDuration::from_millis(400),
        compose_timeout: SimDuration::from_millis(1000),
        sched_poll: SimDuration::from_millis(10),
        ..ProtocolConfig::default()
    }
}

/// The live protocol with operator overrides applied. `--heartbeat-timeout-ms`
/// stretches the failover trigger: the CI recovery-smoke job sets it above
/// its kill window so a crashed RM is *recovered* (from its state dir)
/// rather than failed over, and `arm health` visibly reports `rm_stale`
/// in between.
fn tuned_protocol(flags: &BTreeMap<String, String>) -> Result<ProtocolConfig, String> {
    let mut protocol = live_protocol();
    let timeout = parse_u64(flags, "heartbeat-timeout-ms", 0)?;
    if timeout > 0 {
        protocol.heartbeat_timeout = SimDuration::from_millis(timeout);
    }
    Ok(protocol)
}

fn parse_u64(flags: &BTreeMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    flags
        .get(name)
        .map(|v| v.parse().map_err(|e| format!("bad --{name}: {e}")))
        .transpose()
        .map(|v| v.unwrap_or(default))
}

fn intermediate_format() -> MediaFormat {
    MediaFormat::new(Codec::Mpeg2, Resolution::VGA, 256)
}

/// `--state-dir DIR [--snapshot-ms MS]` → crash-safe persistence config.
fn store_config(flags: &BTreeMap<String, String>) -> Result<Option<StoreConfig>, String> {
    let Some(dir) = flags.get("state-dir") else {
        return Ok(None);
    };
    let mut cfg = StoreConfig::new(dir);
    if let Some(ms) = flags.get("snapshot-ms") {
        let ms: u64 = ms.parse().map_err(|e| format!("bad --snapshot-ms: {e}"))?;
        if ms == 0 {
            return Err("--snapshot-ms must be positive".into());
        }
        cfg.snapshot_period = Duration::from_millis(ms);
    }
    Ok(Some(cfg))
}

/// Set by the `SIGINT`/`SIGTERM` handler; polled by the `arm node` hold
/// loop to turn an asynchronous signal into a graceful shutdown.
static STOP_REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// libc `signal(2)`, already linked through std. Dependency-free
    /// signal handling: the approved crate set has no `signal-hook`/`ctrlc`.
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_stop_signal(_sig: i32) {
    // Only an atomic store: the one async-signal-safe thing a handler may
    // do. Everything else (snapshot flush, link teardown) happens on the
    // main thread once the hold loop observes the flag.
    STOP_REQUESTED.store(true, Ordering::SeqCst);
}

/// Routes Ctrl-C and SIGTERM into [`STOP_REQUESTED`]. After this, killing
/// the node politely gives it a clean exit (final snapshot, `Leave`
/// announcement, exit code 0); only SIGKILL still simulates a crash.
fn install_stop_handlers() {
    // SAFETY: `on_stop_signal` is async-signal-safe (a single atomic
    // store) and has the exact type signal(2) expects.
    unsafe {
        signal(SIGINT, on_stop_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_stop_signal as extern "C" fn(i32) as usize);
    }
}

/// The demo task: fetch "demo-movie" transcoded to the paper's target
/// format, deadline a few seconds out.
fn demo_task(requester: NodeId) -> TaskSpec {
    TaskSpec {
        id: TaskId::new(1),
        name: "demo-movie".into(),
        requester,
        initial_format: MediaFormat::paper_source(),
        acceptable_formats: vec![MediaFormat::paper_target()],
        qos: QosSpec::with_deadline(SimDuration::from_secs(10)),
        submitted_at: SimTime::ZERO,
        session_secs: 1.0,
    }
}

fn plain_spawn(id: u64, bootstrap: Option<u64>) -> PeerSpawn {
    PeerSpawn {
        id: NodeId::new(id),
        capacity: 100.0,
        bandwidth_kbps: 10_000,
        objects: vec![],
        services: vec![],
        bootstrap: bootstrap.map(NodeId::new),
    }
}

/// Demo cluster layout: peer 1 founds the overlay, peer 2 hosts the source
/// object plus the first transcoding stage, peer 3 offers the second stage,
/// the rest are plain capacity; everyone bootstraps off peer 1.
fn demo_spawns(peers: u64) -> Vec<PeerSpawn> {
    let mut spawns = Vec::with_capacity(peers as usize);
    for i in 1..=peers {
        let mut spawn = plain_spawn(i, (i > 1).then_some(1));
        if i == 2 {
            spawn.objects = vec![MediaObject::new(
                ObjectId::new(1),
                "demo-movie",
                MediaFormat::paper_source(),
                60.0,
            )];
            spawn.services = vec![ServiceSpec::transcoder(
                ServiceId::new(1),
                MediaFormat::paper_source(),
                intermediate_format(),
                5.0,
            )];
        }
        if i == 3 {
            spawn.services = vec![ServiceSpec::transcoder(
                ServiceId::new(2),
                intermediate_format(),
                MediaFormat::paper_target(),
                5.0,
            )];
        }
        spawns.push(spawn);
    }
    spawns
}

/// Prints the same per-kind trace table as `simulate`.
fn print_trace_summary(telemetry: &Telemetry) {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ev in &telemetry.traces {
        *counts.entry(ev.kind.name()).or_default() += 1;
    }
    if counts.is_empty() {
        println!("no trace events recorded");
        return;
    }
    println!("trace events ({} kinds):", counts.len());
    for (kind, count) in &counts {
        println!("  {kind:<20} {count}");
    }
}

fn print_transport_summary(stats: &[TransportStats]) {
    let msgs_out: u64 = stats.iter().map(|s| s.msgs_out()).sum();
    let bytes_out: u64 = stats.iter().map(|s| s.bytes_out()).sum();
    let reconnects: u64 = stats.iter().map(|s| s.reconnects()).sum();
    let dropped: u64 = stats.iter().map(|s| s.dropped()).sum();
    let decode_errors: u64 = stats.iter().map(|s| s.decode_errors).sum();
    let links: usize = stats.iter().map(|s| s.links.len()).sum();
    println!(
        "wire                 {msgs_out} msgs ({:.1} kB) over {links} links, \
         {reconnects} reconnects, {dropped} dropped, {decode_errors} decode errors",
        bytes_out as f64 / 1e3,
    );
}

/// Records transport counters into an `arm-telemetry` registry and writes
/// the snapshot to `path`.
fn write_metrics(stats: &[TransportStats], path: &str) -> Result<(), String> {
    let mut rec = Recorder::enabled(1 << 12);
    for s in stats {
        s.record_into(&mut rec);
    }
    let json = serde_json::to_string_pretty(&rec.snapshot()).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("wire metrics written to {path}");
    Ok(())
}

/// `arm cluster --peers N`: N live peers over loopback TCP in one process.
pub fn cluster(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let peers = parse_u64(flags, "peers", 8)?;
    if peers < 2 {
        return Err("--peers must be at least 2".into());
    }
    let seed = parse_u64(flags, "seed", 7)?;
    let config = NetPeerConfig {
        protocol: tuned_protocol(flags)?,
        seed,
        tracing: true,
        // Sample fast enough that `arm watch` shows movement during the
        // short demo hold window.
        pulse: Some(PulseConfig {
            period: Duration::from_millis(250),
            ..PulseConfig::default()
        }),
        store: store_config(flags)?,
    };
    println!("starting {peers} live peers on loopback TCP (seed {seed})...");
    let cluster = NetCluster::start(demo_spawns(peers), &config, TcpOptions::default())
        .map_err(|e| format!("starting cluster: {e}"))?;

    // Publish the listen addresses (for `arm top` / `arm trace` observers
    // and the CI smoke job) before the overlay warms up.
    let addrs = cluster.listen_addrs();
    if let Some(path) = flags.get("addr-file") {
        let lines: String = addrs
            .iter()
            .map(|(id, addr)| format!("{} {addr}\n", id.raw()))
            .collect();
        std::fs::write(path, lines).map_err(|e| format!("writing {path}: {e}"))?;
        println!("listen addresses written to {path}");
    }

    // Let the overlay form (joins, heartbeats, first load reports).
    std::thread::sleep(Duration::from_millis(800));
    let requester = NodeId::new(peers);
    println!("overlay warm; submitting demo task at peer {requester}...");
    cluster.submit(requester, demo_task(requester));

    let deadline = Instant::now() + Duration::from_secs(20);
    let allocated = loop {
        let t = cluster.telemetry();
        if let Some((_, ok, _)) = t.replies.iter().find(|(id, ..)| *id == TaskId::new(1)) {
            break *ok;
        }
        if Instant::now() >= deadline {
            cluster.shutdown();
            return Err("demo task saw no reply within 20s".into());
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    // Give the session a moment to start streaming before tearing down.
    std::thread::sleep(Duration::from_millis(300));

    // Hold the cluster alive serving status queries so observers (`arm
    // top`, `arm trace`, the CI obs-smoke job) can interrogate it.
    let hold = parse_u64(flags, "hold-secs", 0)?;
    if hold > 0 {
        println!("holding cluster for {hold}s (status port open for arm top/trace)...");
        std::thread::sleep(Duration::from_secs(hold));
    }

    let telemetry = cluster.telemetry();
    let virtual_secs = cluster.clock().now().as_secs_f64();
    let stats = cluster.shutdown();

    println!();
    println!(
        "task allocated       {}",
        if allocated { "yes" } else { "no (rejected)" }
    );
    println!("messages             {}", telemetry.messages);
    println!("ran for              {virtual_secs:.1}s");
    print_transport_summary(&stats);
    println!();
    print_trace_summary(&telemetry);
    if let Some(path) = flags.get("metrics") {
        write_metrics(&stats, path)?;
    }

    let decode_errors: u64 = stats.iter().map(|s| s.decode_errors).sum();
    if decode_errors > 0 {
        return Err(format!("{decode_errors} frames failed to decode"));
    }
    if !allocated {
        return Err("demo task was not allocated".into());
    }
    Ok(())
}

/// `arm node --listen ADDR [--bootstrap ADDR]`: one live peer, joined to an
/// existing overlay if a bootstrap address is given.
pub fn node(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let listen = flags
        .get("listen")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".into());
    let id = parse_u64(flags, "id", 1)?;
    let secs = parse_u64(flags, "secs", 10)?;
    let seed = parse_u64(flags, "seed", 7)?;
    let me = NodeId::new(id);

    let clock = NetClock::new();
    let telemetry = arm_runtime::shared_telemetry();
    let mailbox = NetMailbox::new(clock.clone());
    let transport = Arc::new(
        TcpTransport::bind(me, &listen, mailbox.sink(), TcpOptions::default())
            .map_err(|e| e.to_string())?,
    );
    println!("peer {me} listening on {}", transport.listen_addr());

    let bootstrap = match flags.get("bootstrap") {
        Some(addr) => {
            let remote = transport
                .connect(addr)
                .map_err(|e| format!("bootstrap {addr}: {e}"))?;
            println!("bootstrap {addr} is peer {remote}");
            Some(remote)
        }
        None => {
            println!("no --bootstrap: founding a new overlay");
            None
        }
    };
    if bootstrap == Some(me) {
        transport.shutdown();
        return Err(format!(
            "bootstrap peer has our own id ({me}); pick a unique --id"
        ));
    }

    let mut spawn = plain_spawn(id, None);
    spawn.bootstrap = bootstrap;
    let store = store_config(flags)?;
    if let Some(cfg) = &store {
        let dir = cfg.node_dir(me);
        if dir.join(arm_store::SNAPSHOT_FILE).exists() || dir.join(arm_store::LOG_FILE).exists() {
            println!("state dir {} has prior state; recovering", dir.display());
        } else {
            println!("persisting state under {}", dir.display());
        }
    }
    let config = NetPeerConfig {
        protocol: tuned_protocol(flags)?,
        seed,
        tracing: true,
        pulse: Some(PulseConfig::default()),
        store,
    };
    let peer = NetPeer::start(
        mailbox,
        spawn,
        Arc::clone(&transport) as Arc<dyn Transport>,
        &config,
        Arc::clone(&telemetry),
    );
    // Serve the introspection plane so `arm top/trace/watch/health` can
    // interrogate hand-assembled multi-process clusters too. The address
    // book only knows this node (and its bootstrap); observers merge the
    // books they collect.
    {
        let status = peer.status();
        let weak = Arc::downgrade(&transport);
        let mut book = vec![(me, transport.listen_addr().to_string())];
        if let (Some(remote), Some(addr)) = (bootstrap, flags.get("bootstrap")) {
            book.push((remote, addr.clone()));
        }
        transport.set_status_provider(Box::new(move |req| {
            let stats = weak.upgrade().map(|t| t.stats()).unwrap_or_default();
            status.report(req, stats, book.clone())
        }));
    }

    install_stop_handlers();
    println!("running for {secs}s (Ctrl-C / SIGTERM stops gracefully)...");
    let deadline = Instant::now() + Duration::from_secs(secs);
    let stopped_by_signal = loop {
        if STOP_REQUESTED.load(Ordering::SeqCst) {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    if stopped_by_signal {
        println!("stop signal received; flushing state and leaving gracefully...");
    }
    // Graceful stop: the peer announces its departure and — with a state
    // dir — compacts everything into one final *clean* snapshot before the
    // thread joins; the transport then closes every link. Reaching exit
    // code 0 therefore certifies a clean stop; a crash (SIGKILL, panic,
    // power loss) can't get here and leaves a dirty state dir behind.
    peer.stop(true);
    let stats = vec![transport.stats()];
    transport.shutdown();

    let telemetry = telemetry.lock().clone();
    println!();
    println!("messages             {}", telemetry.messages);
    print_transport_summary(&stats);
    println!();
    print_trace_summary(&telemetry);
    if let Some(path) = flags.get("metrics") {
        write_metrics(&stats, path)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_demo_completes_over_tcp() {
        let mut flags = BTreeMap::new();
        flags.insert("peers".to_string(), "4".to_string());
        cluster(&flags).unwrap();
    }

    #[test]
    fn single_node_founds_overlay() {
        let mut flags = BTreeMap::new();
        flags.insert("listen".to_string(), "127.0.0.1:0".to_string());
        flags.insert("secs".to_string(), "1".to_string());
        node(&flags).unwrap();
    }

    #[test]
    fn cluster_rejects_single_peer() {
        let mut flags = BTreeMap::new();
        flags.insert("peers".to_string(), "1".to_string());
        assert!(cluster(&flags).is_err());
    }
}
