//! `arm` — command-line front end for the adaptive P2P resource-management
//! middleware.
//!
//! ```text
//! arm scaffold [--out scenario.json]        write a default scenario config
//! arm simulate [--config scenario.json]     run it; print a summary
//!              [--peers N]                  override the total peer count
//!              [--out report.json]          also dump the full report as JSON
//!              [--seed N]                   override the config's seed
//!              [--trace out.jsonl]          write structured trace events
//!              [--metrics out.json]         write the metrics snapshot
//! arm topology [--clusters N] [--per-cluster M] [--seed S]
//!                                           print a generated topology
//! arm experiment <e01..e14|all> [--quick]   run a reproduction experiment
//! arm cluster [--peers N] [--seed S]        live loopback TCP cluster running
//!             [--metrics out.json]          the demo workload end-to-end
//!             [--hold-secs S]               keep serving status after the demo
//!             [--addr-file path]            write "id addr" lines on boot
//!             [--state-dir DIR]             crash-safe state under DIR/node-<id>/
//! arm node --listen ADDR [--id N]           one live peer over TCP
//!          [--bootstrap ADDR] [--secs S]
//!          [--state-dir DIR]                WAL + snapshots; restart recovers
//!          [--snapshot-ms MS]               snapshot cadence (default 5000)
//! arm top --addr HOST:PORT [--iters N]      live cluster table over the wire
//!         [--json]                          machine-readable cluster view
//! arm trace --addr HOST:PORT                merge every node's trace ring
//!           [--out merged.jsonl]            into one causal JSONL timeline
//!           [--expect-chain]                fail unless a submit→terminal
//!                                           cross-node chain is complete
//! arm watch --addr HOST:PORT                live per-node sparklines of the
//!           [--metric SUBSTR]               retained series (incremental
//!           [--iters N] [--period-ms MS]    cursor scrape) + firing rules
//! arm health --addr HOST:PORT [--json]      one-shot fleet health probe;
//!                                           exits non-zero on firing rules
//! ```
//!
//! Argument parsing is deliberately dependency-free (no CLI crates in the
//! approved set); flags are `--name value` pairs.

use arm_sim::{ScenarioConfig, Simulation};
use arm_util::DetRng;
use std::collections::BTreeMap;
use std::process::ExitCode;

mod live;
mod obs;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "scaffold" => scaffold(&flags),
        "simulate" => simulate(&flags),
        "topology" => topology(&flags),
        "experiment" => experiment(&args[1..]),
        "cluster" => live::cluster(&flags),
        "node" => live::node(&flags),
        "top" => obs::top(&flags),
        "trace" => obs::trace(&flags),
        "watch" => obs::watch(&flags),
        "health" => obs::health(&flags),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
arm — adaptive P2P resource-management middleware

USAGE:
  arm scaffold [--out scenario.json]
  arm simulate [--config scenario.json] [--peers N] [--out report.json] [--seed N]
               [--trace events.jsonl] [--metrics metrics.json]
  arm topology [--clusters N] [--per-cluster M] [--seed S]
  arm experiment <e01..e14|all> [--quick]
  arm cluster [--peers N] [--seed S] [--metrics out.json] [--hold-secs S] [--addr-file path]
              [--state-dir DIR] [--snapshot-ms MS]
  arm node --listen ADDR [--id N] [--bootstrap ADDR] [--secs S] [--metrics out.json]
           [--state-dir DIR] [--snapshot-ms MS] [--heartbeat-timeout-ms MS]
           (SIGTERM/Ctrl-C stop gracefully: final snapshot, links closed, exit 0;
            a crash leaves a dirty state dir that the next run recovers from)
  arm top --addr HOST:PORT [--iters N] [--period-ms MS] [--json]
  arm trace --addr HOST:PORT [--out merged.jsonl] [--expect-chain]
  arm watch --addr HOST:PORT [--metric SUBSTR] [--iters N] [--period-ms MS]
  arm health --addr HOST:PORT [--json]";

/// `--name value` pairs (a trailing flag without a value maps to "true").
fn parse_flags(args: &[String]) -> BTreeMap<String, String> {
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "true".into());
            let advanced = if value == "true" && args.get(i + 1).map(|v| v.as_str()) != Some("true")
            {
                1
            } else {
                2
            };
            flags.insert(name.to_string(), value);
            i += advanced;
        } else {
            i += 1;
        }
    }
    flags
}

fn scaffold(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let path = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("scenario.json");
    let cfg = ScenarioConfig::default();
    let json = serde_json::to_string_pretty(&cfg).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote default scenario to {path}; edit and run `arm simulate --config {path}`");
    Ok(())
}

fn simulate(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let mut cfg: ScenarioConfig = match flags.get("config") {
        Some(path) => {
            let raw = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            serde_json::from_str(&raw).map_err(|e| format!("parsing {path}: {e}"))?
        }
        None => {
            // Without a config, run a demo scenario with mild churn and a
            // hot workload so the whole protocol (failover, repair,
            // admission control, reassignment) is exercised.
            let mut cfg = ScenarioConfig {
                churn: Some(arm_net::churn::ChurnParams {
                    mean_uptime_secs: 120.0,
                    mean_downtime_secs: 20.0,
                    crash_fraction: 0.7,
                    churning_fraction: 0.3,
                }),
                ..ScenarioConfig::default()
            };
            cfg.workload.arrival_rate = 3.0;
            cfg.workload.session_mean_secs = 180.0;
            // Low overload threshold: hot peers show up even in a short
            // demo run, so §4.5 reassignment visibly fires.
            cfg.protocol.overload_threshold = 0.05;
            cfg
        }
    };
    if let Some(seed) = flags.get("seed") {
        cfg.seed = seed.parse().map_err(|e| format!("bad --seed: {e}"))?;
    }
    if let Some(peers) = flags.get("peers") {
        let peers: usize = peers.parse().map_err(|e| format!("bad --peers: {e}"))?;
        if peers == 0 {
            return Err("--peers must be positive".into());
        }
        // Spread the requested total across the configured clusters.
        cfg.peers_per_cluster = peers.div_ceil(cfg.clusters.max(1));
    }
    let telemetry = flags.contains_key("trace") || flags.contains_key("metrics");
    let peers = cfg.num_peers();
    let horizon = cfg.horizon.as_secs_f64();
    println!(
        "running {peers} peers for {horizon:.0}s of virtual time (seed {})...",
        cfg.seed
    );
    let mut sim = Simulation::new(cfg);
    if telemetry {
        sim.enable_telemetry(1 << 18);
    }
    let (report, recorder) = sim.run_traced();

    println!();
    println!("submitted            {}", report.submitted);
    println!(
        "on time / late       {} / {} (goodput {:.1}%)",
        report.outcomes.on_time,
        report.outcomes.late,
        report.outcomes.goodput() * 100.0
    );
    println!(
        "rejected / failed    {} / {}",
        report.outcomes.rejected, report.outcomes.failed
    );
    let mut resp = report.response_time.clone();
    println!(
        "response p50/p95     {:.0} ms / {:.0} ms",
        resp.quantile(0.5) * 1e3,
        resp.quantile(0.95) * 1e3
    );
    println!("mean fairness        {:.3}", report.mean_fairness());
    println!("mean utilization     {:.2}", report.mean_utilization());
    println!(
        "domains / peers      {} / {}",
        report.final_domains, report.final_peers
    );
    println!(
        "messages             {} ({:.1} MB), {} lost",
        report.message_count(),
        report.message_bytes() as f64 / 1e6,
        report.messages_lost
    );
    println!(
        "adaptation           {} repairs, {} migrations, {} promotions, {} redirects",
        report.repairs_ok + report.repairs_failed,
        report.reassignments,
        report.promotions,
        report.redirects
    );
    println!(
        "simulated in         {} ms ({} events)",
        report.wall_ms, report.events_processed
    );

    if telemetry && !report.trace_counts.is_empty() {
        println!();
        println!("trace events ({} kinds):", report.trace_counts.len());
        for (kind, count) in &report.trace_counts {
            println!("  {kind:<20} {count}");
        }
    }
    if telemetry {
        print_derived_rates(&report, &recorder.snapshot());
    }

    if let Some(out) = flags.get("trace") {
        let mut buf = Vec::new();
        recorder
            .trace
            .write_jsonl(&mut buf)
            .map_err(|e| format!("serialising trace: {e}"))?;
        std::fs::write(out, buf).map_err(|e| format!("writing {out}: {e}"))?;
        let recorded: u64 = recorder.trace.kind_counts().values().sum();
        println!(
            "trace written to {out} ({} events retained of {recorded} recorded)",
            recorder.trace.len()
        );
    }
    if let Some(out) = flags.get("metrics") {
        let json = serde_json::to_string_pretty(&recorder.snapshot()).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
        println!("metrics written to {out}");
    }
    if let Some(out) = flags.get("out") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
        println!("full report written to {out}");
    }
    Ok(())
}

/// Rates derived from the raw counters: allocator cache effectiveness,
/// trace-ring eviction pressure, and per-message-kind handler latency
/// quantiles from the profiler's `handle_seconds{kind=...}` histograms.
fn print_derived_rates(report: &arm_sim::SimReport, snapshot: &arm_telemetry::MetricsSnapshot) {
    println!();
    println!("derived rates:");
    let lookups = report.alloc.cache_hits + report.alloc.cache_misses;
    if lookups > 0 {
        println!(
            "  alloc cache hit      {:.1}% ({} of {lookups} lookups)",
            report.alloc.cache_hits as f64 / lookups as f64 * 100.0,
            report.alloc.cache_hits
        );
    }
    let recorded: u64 = report.trace_counts.values().sum();
    if recorded > 0 {
        println!(
            "  traces dropped       {:.2}% ({} of {recorded} evicted from the ring)",
            report.traces_dropped as f64 / recorded as f64 * 100.0,
            report.traces_dropped
        );
    }
    let prefix = format!("{}{{", arm_core::HANDLE_METRIC);
    let mut handled = false;
    for entry in &snapshot.histograms {
        let Some(rest) = entry.key.strip_prefix(&prefix) else {
            continue;
        };
        // Key renders as `handle_seconds{kind="heartbeat"}`.
        let kind = rest
            .split("kind=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .unwrap_or(rest);
        let (Some(p50), Some(p99)) = (
            entry.histogram.quantile(0.5),
            entry.histogram.quantile(0.99),
        ) else {
            continue;
        };
        if !handled {
            println!(
                "  handle p50/p99 (µs, {} kinds):",
                snapshot
                    .histograms
                    .iter()
                    .filter(|h| h.key.starts_with(&prefix))
                    .count()
            );
            handled = true;
        }
        println!(
            "    {kind:<18} {:>8.1} / {:>8.1}  ({} samples)",
            p50 * 1e6,
            p99 * 1e6,
            entry.histogram.total()
        );
    }
}

fn topology(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let clusters: usize = flags
        .get("clusters")
        .map(|v| v.parse().map_err(|e| format!("bad --clusters: {e}")))
        .transpose()?
        .unwrap_or(2);
    let per: usize = flags
        .get("per-cluster")
        .map(|v| v.parse().map_err(|e| format!("bad --per-cluster: {e}")))
        .transpose()?
        .unwrap_or(8);
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(1);
    let mut rng = DetRng::new(seed).stream("topology");
    let topo = arm_net::Topology::clustered(
        clusters,
        per,
        0.05,
        arm_net::Heterogeneity::default(),
        &mut rng,
        0,
    );
    println!(
        "{:<6} {:<8} {:<18} {:>10} {:>10} {:>10}",
        "peer", "cluster", "coord", "capacity", "bw kbps", "stability"
    );
    for p in &topo.peers {
        println!(
            "{:<6} {:<8} ({:>6.2},{:>6.2})   {:>10.1} {:>10} {:>9.0}s",
            p.id.to_string(),
            p.cluster,
            p.coord.x,
            p.coord.y,
            p.capacity,
            p.bandwidth_kbps,
            p.stability
        );
    }
    Ok(())
}

fn experiment(args: &[String]) -> Result<(), String> {
    let Some(id) = args.first() else {
        return Err("experiment requires an id (e01..e14 or all)".into());
    };
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    type Runner = fn(bool) -> Vec<arm_experiments::Table>;
    let registry: Vec<(&str, &str, Runner)> = vec![
        ("e01", "Figure 1", arm_experiments::e01_figure1::run),
        ("e02", "Figure 2", arm_experiments::e02_figure2::run),
        (
            "e03",
            "Figure 3 / allocation scaling",
            arm_experiments::e03_alloc_scaling::run,
        ),
        (
            "e04",
            "fairness vs baselines",
            arm_experiments::e04_fairness::run,
        ),
        ("e05", "scalability", arm_experiments::e05_scalability::run),
        (
            "e06",
            "heterogeneity",
            arm_experiments::e06_heterogeneity::run,
        ),
        ("e07", "churn", arm_experiments::e07_churn::run),
        (
            "e08",
            "local scheduling",
            arm_experiments::e08_scheduling::run,
        ),
        (
            "e09",
            "redirection & blooms",
            arm_experiments::e09_admission::run,
        ),
        (
            "e10",
            "report period",
            arm_experiments::e10_update_period::run,
        ),
        (
            "e11",
            "reassignment",
            arm_experiments::e11_reassignment::run,
        ),
        ("e12", "gossip", arm_experiments::e12_gossip::run),
        ("e13", "loss resilience", arm_experiments::e13_loss::run),
        (
            "e14",
            "domain granularity",
            arm_experiments::e14_domain_size::run,
        ),
    ];
    if id == "all" {
        for (eid, title, f) in registry {
            arm_experiments::run_and_print(eid, title, f(quick));
        }
        return Ok(());
    }
    let Some((eid, title, f)) = registry.iter().find(|(eid, ..)| eid == id) else {
        return Err(format!("unknown experiment '{id}' (e01..e14 or all)"));
    };
    arm_experiments::run_and_print(eid, title, f(quick));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--config", "x.json", "--quick", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = parse_flags(&args);
        assert_eq!(flags["config"], "x.json");
        assert_eq!(flags["seed"], "7");
        assert_eq!(flags["quick"], "true");
    }

    #[test]
    fn scaffold_and_simulate_roundtrip() {
        let dir = std::env::temp_dir().join("arm-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg_path = dir.join("scenario.json");
        let out_path = dir.join("report.json");
        let mut flags = BTreeMap::new();
        flags.insert("out".to_string(), cfg_path.to_str().unwrap().to_string());
        scaffold(&flags).unwrap();

        // Shrink the scenario so the test is fast.
        let raw = std::fs::read_to_string(&cfg_path).unwrap();
        let mut cfg: ScenarioConfig = serde_json::from_str(&raw).unwrap();
        cfg.horizon = arm_util::SimTime::from_secs(30);
        cfg.peers_per_cluster = 4;
        std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();

        let mut flags = BTreeMap::new();
        flags.insert("config".to_string(), cfg_path.to_str().unwrap().to_string());
        flags.insert("out".to_string(), out_path.to_str().unwrap().to_string());
        flags.insert("seed".to_string(), "5".to_string());
        simulate(&flags).unwrap();
        let report: arm_sim::SimReport =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert!(report.events_processed > 0);
    }

    #[test]
    fn simulate_writes_trace_and_metrics() {
        let dir = std::env::temp_dir().join("arm-cli-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("events.jsonl");
        let metrics_path = dir.join("metrics.json");
        // Shrunk scenario so the test is fast.
        let cfg_path = dir.join("scenario.json");
        let cfg = ScenarioConfig {
            horizon: arm_util::SimTime::from_secs(45),
            ..ScenarioConfig::default()
        };
        std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();
        let mut flags = BTreeMap::new();
        flags.insert("config".to_string(), cfg_path.to_str().unwrap().to_string());
        flags.insert("peers".to_string(), "8".to_string());
        flags.insert(
            "trace".to_string(),
            trace_path.to_str().unwrap().to_string(),
        );
        flags.insert(
            "metrics".to_string(),
            metrics_path.to_str().unwrap().to_string(),
        );
        simulate(&flags).unwrap();

        let jsonl = std::fs::read_to_string(&trace_path).unwrap();
        let events = arm_telemetry::TraceLog::parse_jsonl(&jsonl).unwrap();
        assert!(!events.is_empty(), "trace JSONL has events");
        let snapshot: arm_telemetry::MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert!(
            snapshot
                .histograms
                .iter()
                .any(|h| h.key.starts_with("task_phase_seconds")),
            "metrics snapshot has per-phase latency histograms"
        );
    }

    #[test]
    fn topology_runs() {
        let mut flags = BTreeMap::new();
        flags.insert("clusters".to_string(), "2".to_string());
        flags.insert("per-cluster".to_string(), "3".to_string());
        topology(&flags).unwrap();
    }

    #[test]
    fn unknown_experiment_errors() {
        let args = vec!["e99".to_string()];
        assert!(experiment(&args).is_err());
    }
}
