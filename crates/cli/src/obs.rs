//! `arm top` / `arm trace`: live introspection over the wire.
//!
//! Both verbs are pure observers: they speak only the
//! `StatusRequest`/`StatusReport` frames (no `Hello`, no `NodeId` of their
//! own) and discover the cluster by walking the address books the reports
//! gossip back. Seeded with one `--addr`, they reach every node any
//! reachable node knows about.
//!
//! * `arm top --addr HOST:PORT [--iters N] [--period-ms MS]` — a live
//!   refreshing cluster table: role, domain, load, active hops, open task
//!   spans, wire counters.
//! * `arm trace --addr HOST:PORT [--out merged.jsonl] [--expect-chain]` —
//!   collects every node's trace ring and merges them into one
//!   causally-ordered JSONL timeline. With `--expect-chain` it fails unless
//!   the merged timeline contains a complete submit→terminal causal chain.

use arm_telemetry::{merge_timeline, write_jsonl, TaskPhase, TraceEvent, TraceKind};
use arm_util::NodeId;
use arm_wire::{query_status, StatusReport};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

/// Observers introduce themselves with this id (informational only).
const OBSERVER: NodeId = NodeId::new(u64::MAX);

/// Upper bound on the cluster walk, so a malicious or buggy address book
/// cannot make an observer dial forever.
const MAX_WALK: usize = 256;

fn parse_flag_u64(
    flags: &BTreeMap<String, String>,
    name: &str,
    default: u64,
) -> Result<u64, String> {
    flags
        .get(name)
        .map(|v| v.parse().map_err(|e| format!("bad --{name}: {e}")))
        .transpose()
        .map(|v| v.unwrap_or(default))
}

/// Walks the cluster from one seed address: queries it, then every address
/// its report gossips, breadth-first, deduplicating by node id. Unreachable
/// peers are skipped (reported in the returned error list), not fatal.
fn collect_reports(
    seed: &str,
    include_trace: bool,
    timeout: Duration,
) -> (Vec<StatusReport>, Vec<String>) {
    let mut reports: BTreeMap<NodeId, StatusReport> = BTreeMap::new();
    let mut errors = Vec::new();
    let mut seen_addrs: BTreeSet<String> = BTreeSet::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    queue.push_back(seed.to_string());
    seen_addrs.insert(seed.to_string());
    while let Some(addr) = queue.pop_front() {
        if reports.len() >= MAX_WALK {
            errors.push(format!("cluster walk capped at {MAX_WALK} nodes"));
            break;
        }
        match query_status(&addr, OBSERVER, include_trace, timeout) {
            Ok(report) => {
                for (peer, peer_addr) in &report.peers {
                    if !reports.contains_key(peer) && seen_addrs.insert(peer_addr.clone()) {
                        queue.push_back(peer_addr.clone());
                    }
                }
                reports.insert(report.node, report);
            }
            Err(e) => errors.push(format!("{addr}: {e}")),
        }
    }
    (reports.into_values().collect(), errors)
}

fn render_table(reports: &[StatusReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:<8} {:<8} {:<6} {:>8} {:>6} {:>6} {:>7} {:>10} {:>10} {:>8}\n",
        "node",
        "role",
        "domain",
        "rm",
        "load",
        "hops",
        "spans",
        "sess",
        "msgs in",
        "msgs out",
        "dropped"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<6} {:<8} {:<8} {:<6} {:>8.1} {:>6} {:>6} {:>7} {:>10} {:>10} {:>8}\n",
            r.node.to_string(),
            r.role,
            r.domain
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            r.rm.map(|n| n.to_string()).unwrap_or_else(|| "-".into()),
            r.load,
            r.active_hops,
            r.open_spans,
            r.sessions
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            r.transport.msgs_in(),
            r.transport.msgs_out(),
            r.traces_dropped,
        ));
    }
    out
}

/// `arm top --addr HOST:PORT [--iters N] [--period-ms MS]`.
pub fn top(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let Some(addr) = flags.get("addr") else {
        return Err("top requires --addr HOST:PORT".into());
    };
    let iters = parse_flag_u64(flags, "iters", 0)?; // 0 = forever
    let period = Duration::from_millis(parse_flag_u64(flags, "period-ms", 1000)?);
    let timeout = Duration::from_millis(parse_flag_u64(flags, "timeout-ms", 2000)?);
    let mut round: u64 = 0;
    loop {
        round += 1;
        let (reports, errors) = collect_reports(addr, false, timeout);
        if reports.is_empty() {
            return Err(format!(
                "no node answered a status request: {}",
                errors.join("; ")
            ));
        }
        // Repaint in place on refresh; plain append on a single shot so the
        // output stays pipeable.
        if iters != 1 && round > 1 {
            print!("\x1b[2J\x1b[H");
        }
        let rms = reports.iter().filter(|r| r.role == "rm").count();
        println!(
            "arm top — {} nodes, {} domains (round {round})",
            reports.len(),
            rms
        );
        print!("{}", render_table(&reports));
        for e in &errors {
            println!("unreachable: {e}");
        }
        if iters != 0 && round >= iters {
            return Ok(());
        }
        std::thread::sleep(period);
    }
}

/// Verifies the merged timeline contains at least one complete causal
/// chain: a trace whose events include a `Submit` and a `Terminal` task
/// phase, whose every parent span resolves within the same trace, and
/// which crosses at least two peers. Returns a description of the best
/// chain, or an error naming what was missing.
fn verify_chain(events: &[TraceEvent]) -> Result<String, String> {
    let mut by_trace: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events.iter().filter(|e| e.trace_id != 0) {
        by_trace.entry(ev.trace_id).or_default().push(ev);
    }
    if by_trace.is_empty() {
        return Err("no causally-tagged events in the merged timeline".into());
    }
    let mut best_failure = String::from("no trace carries a submit phase");
    for (trace, evs) in &by_trace {
        let has_submit = evs.iter().any(|e| {
            matches!(
                e.kind,
                TraceKind::TaskPhase {
                    phase: TaskPhase::Submit,
                    ..
                }
            )
        });
        if !has_submit {
            continue;
        }
        let has_terminal = evs.iter().any(|e| {
            matches!(
                e.kind,
                TraceKind::TaskPhase {
                    phase: TaskPhase::Terminal,
                    ..
                }
            )
        });
        if !has_terminal {
            best_failure = format!("trace {trace:#x} has a submit but no terminal phase");
            continue;
        }
        let spans: BTreeSet<u64> = evs.iter().map(|e| e.span).collect();
        if let Some(orphan) = evs
            .iter()
            .find(|e| e.parent != 0 && !spans.contains(&e.parent))
        {
            best_failure = format!(
                "trace {trace:#x}: span {:#x} has unresolvable parent {:#x}",
                orphan.span, orphan.parent
            );
            continue;
        }
        let peers: BTreeSet<NodeId> = evs.iter().map(|e| e.peer).collect();
        if peers.len() < 2 {
            best_failure = format!("trace {trace:#x} never crossed a node boundary");
            continue;
        }
        return Ok(format!(
            "trace {trace:#x}: {} events across {} nodes, submit→terminal chain complete",
            evs.len(),
            peers.len()
        ));
    }
    Err(best_failure)
}

/// `arm trace --addr HOST:PORT [--out merged.jsonl] [--expect-chain]`.
pub fn trace(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let Some(addr) = flags.get("addr") else {
        return Err("trace requires --addr HOST:PORT".into());
    };
    let out = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("merged.jsonl");
    let timeout = Duration::from_millis(parse_flag_u64(flags, "timeout-ms", 2000)?);
    let (reports, errors) = collect_reports(addr, true, timeout);
    if reports.is_empty() {
        return Err(format!(
            "no node answered a status request: {}",
            errors.join("; ")
        ));
    }
    let mut events = Vec::new();
    let mut dropped_total: u64 = 0;
    for r in &reports {
        let ring = r.trace.as_deref().unwrap_or_default();
        println!(
            "node {:<4} ring {:>6} events, {} dropped",
            r.node.to_string(),
            ring.len(),
            r.traces_dropped
        );
        dropped_total += r.traces_dropped;
        events.extend_from_slice(ring);
    }
    for e in &errors {
        println!("unreachable: {e}");
    }
    let merged = merge_timeline(events);
    let mut buf = Vec::new();
    write_jsonl(&mut buf, merged.iter()).map_err(|e| format!("serialising timeline: {e}"))?;
    std::fs::write(out, buf).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "merged timeline: {} events from {} nodes ({} dropped before collection) -> {out}",
        merged.len(),
        reports.len(),
        dropped_total
    );
    if flags.contains_key("expect-chain") {
        let summary = verify_chain(&merged).map_err(|e| format!("causal chain incomplete: {e}"))?;
        println!("{summary}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_util::SimTime;

    fn phase_event(
        at: u64,
        peer: u64,
        trace: u64,
        span: u64,
        parent: u64,
        phase: TaskPhase,
    ) -> TraceEvent {
        TraceEvent::new(
            SimTime::from_millis(at),
            NodeId::new(peer),
            None,
            TraceKind::TaskPhase {
                task: arm_util::TaskId::new(1),
                phase,
            },
        )
        .causal(trace, span, parent)
    }

    #[test]
    fn chain_verification_accepts_a_complete_cross_node_chain() {
        let events = vec![
            phase_event(1, 4, 77, 100, 0, TaskPhase::Submit),
            phase_event(2, 1, 77, 200, 100, TaskPhase::Allocation),
            phase_event(3, 1, 77, 300, 200, TaskPhase::Terminal),
        ];
        let summary = verify_chain(&events).unwrap();
        assert!(summary.contains("2 nodes"), "{summary}");
    }

    #[test]
    fn top_and_trace_observe_a_live_cluster() {
        use arm_runtime::net::{NetCluster, NetPeerConfig};
        use arm_runtime::PeerSpawn;

        let spawns: Vec<PeerSpawn> = (1..=3)
            .map(|i| PeerSpawn {
                id: NodeId::new(i),
                capacity: 100.0,
                bandwidth_kbps: 10_000,
                objects: vec![],
                services: vec![],
                bootstrap: (i > 1).then(|| NodeId::new(1)),
            })
            .collect();
        let config = NetPeerConfig {
            protocol: arm_core::ProtocolConfig {
                heartbeat_period: arm_util::SimDuration::from_millis(100),
                heartbeat_timeout: arm_util::SimDuration::from_millis(400),
                report_period: arm_util::SimDuration::from_millis(100),
                join_timeout: arm_util::SimDuration::from_millis(400),
                ..arm_core::ProtocolConfig::default()
            },
            seed: 11,
            tracing: true,
        };
        let cluster = NetCluster::start(spawns, &config, arm_wire::TcpOptions::default()).unwrap();
        let seed_addr = cluster.listen_addrs()[0].1.clone();

        // Wait until the overlay has formed before observing.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let (reports, _) = collect_reports(&seed_addr, false, Duration::from_secs(2));
            if reports.len() == 3 && reports.iter().any(|r| r.role == "rm") {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "overlay never formed: {reports:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }

        let mut flags = BTreeMap::new();
        flags.insert("addr".to_string(), seed_addr.clone());
        flags.insert("iters".to_string(), "1".to_string());
        top(&flags).unwrap();

        let out = std::env::temp_dir().join("arm-cli-obs-test.jsonl");
        let mut flags = BTreeMap::new();
        flags.insert("addr".to_string(), seed_addr);
        flags.insert("out".to_string(), out.to_str().unwrap().to_string());
        trace(&flags).unwrap();
        cluster.shutdown();

        let jsonl = std::fs::read_to_string(&out).unwrap();
        let events = arm_telemetry::TraceLog::parse_jsonl(&jsonl).unwrap();
        assert!(!events.is_empty(), "merged timeline has events");
        // The merged file carries the schema header and is causally ordered.
        assert!(jsonl.lines().next().unwrap().contains("\"schema\""));
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn chain_verification_rejects_orphans_and_single_node_traces() {
        // Orphan parent.
        let orphan = vec![
            phase_event(1, 4, 77, 100, 0, TaskPhase::Submit),
            phase_event(3, 1, 77, 300, 999, TaskPhase::Terminal),
        ];
        assert!(verify_chain(&orphan).unwrap_err().contains("unresolvable"));
        // Never left one node.
        let local = vec![
            phase_event(1, 4, 77, 100, 0, TaskPhase::Submit),
            phase_event(3, 4, 77, 300, 100, TaskPhase::Terminal),
        ];
        assert!(verify_chain(&local).unwrap_err().contains("node boundary"));
        // No terminal.
        let open = vec![phase_event(1, 4, 77, 100, 0, TaskPhase::Submit)];
        assert!(verify_chain(&open).unwrap_err().contains("no terminal"));
        // Nothing tagged at all.
        assert!(verify_chain(&[]).is_err());
    }
}
