//! `arm top` / `arm trace` / `arm watch` / `arm health`: live introspection
//! over the wire.
//!
//! All four verbs are pure observers: they speak only the
//! `StatusRequest`/`StatusReport` frames (no `Hello`, no `NodeId` of their
//! own) and discover the cluster by walking the address books the reports
//! gossip back. Seeded with one `--addr`, they reach every node any
//! reachable node knows about.
//!
//! * `arm top --addr HOST:PORT [--iters N] [--period-ms MS] [--json]` — a
//!   live refreshing cluster table: role, domain, load, active hops, open
//!   task spans, wire counters. `--json` emits the same machine-readable
//!   cluster view `arm health --json` uses.
//! * `arm trace --addr HOST:PORT [--out merged.jsonl] [--expect-chain]` —
//!   collects every node's trace ring and merges them into one
//!   causally-ordered JSONL timeline. With `--expect-chain` it fails unless
//!   the merged timeline contains a complete submit→terminal causal chain.
//! * `arm watch --addr HOST:PORT [--iters N] [--period-ms MS] [--metric S]`
//!   — live per-node sparkline table of the retained series, scraped
//!   incrementally (cursor per node; only new points cross the wire), plus
//!   each node's firing health rules.
//! * `arm health --addr HOST:PORT [--json]` — one-shot fleet health probe;
//!   exits non-zero if any reachable node has a firing rule (or nobody
//!   answers). Unreachable peers are warnings, not failures.

use arm_telemetry::{merge_timelines, write_jsonl, HealthStatus, TaskPhase, TraceEvent, TraceKind};
use arm_util::NodeId;
use arm_wire::{query_status_with, StatusReport, StatusRequest};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

/// Observers introduce themselves with this id (informational only).
const OBSERVER: NodeId = NodeId::new(u64::MAX);

/// Upper bound on the cluster walk, so a malicious or buggy address book
/// cannot make an observer dial forever.
const MAX_WALK: usize = 256;

fn parse_flag_u64(
    flags: &BTreeMap<String, String>,
    name: &str,
    default: u64,
) -> Result<u64, String> {
    flags
        .get(name)
        .map(|v| v.parse().map_err(|e| format!("bad --{name}: {e}")))
        .transpose()
        .map(|v| v.unwrap_or(default))
}

/// Walks the cluster from one seed address: queries it, then every address
/// its report gossips, breadth-first, deduplicating by node id. Unreachable
/// peers are skipped (reported in the returned error list), not fatal. The
/// request sent to each node comes from `request_for(addr)`, so callers can
/// thread per-node scrape cursors; each report is returned with the address
/// that produced it.
fn collect_reports_with(
    seed: &str,
    mut request_for: impl FnMut(&str) -> StatusRequest,
    timeout: Duration,
) -> (Vec<(String, StatusReport)>, Vec<String>) {
    let mut reports: BTreeMap<NodeId, (String, StatusReport)> = BTreeMap::new();
    let mut errors = Vec::new();
    let mut seen_addrs: BTreeSet<String> = BTreeSet::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    queue.push_back(seed.to_string());
    seen_addrs.insert(seed.to_string());
    while let Some(addr) = queue.pop_front() {
        if reports.len() >= MAX_WALK {
            errors.push(format!("cluster walk capped at {MAX_WALK} nodes"));
            break;
        }
        match query_status_with(&addr, request_for(&addr), timeout) {
            Ok(report) => {
                for (peer, peer_addr) in &report.peers {
                    if !reports.contains_key(peer) && seen_addrs.insert(peer_addr.clone()) {
                        queue.push_back(peer_addr.clone());
                    }
                }
                reports.insert(report.node, (addr, report));
            }
            Err(e) => errors.push(format!("{addr}: {e}")),
        }
    }
    (reports.into_values().collect(), errors)
}

fn collect_reports(
    seed: &str,
    include_trace: bool,
    timeout: Duration,
) -> (Vec<StatusReport>, Vec<String>) {
    let request = StatusRequest {
        observer: OBSERVER,
        include_trace,
        series_cursor: None,
    };
    let (reports, errors) = collect_reports_with(seed, |_| request, timeout);
    (reports.into_iter().map(|(_, r)| r).collect(), errors)
}

/// One machine-readable cluster snapshot, shared verbatim by `arm top
/// --json` and `arm health --json` so scripts parse a single shape.
#[derive(Debug, Serialize)]
struct ClusterView {
    /// True when any reachable node has a firing health rule.
    firing: bool,
    nodes: Vec<NodeView>,
    /// Addresses that did not answer, with the error.
    unreachable: Vec<String>,
}

#[derive(Debug, Serialize)]
struct NodeView {
    node: u64,
    role: String,
    domain: Option<u64>,
    rm: Option<u64>,
    load: f64,
    active_hops: u64,
    open_spans: u64,
    sessions: Option<u64>,
    msgs_in: u64,
    msgs_out: u64,
    traces_dropped: u64,
    /// Every health rule the node evaluates, firing or not. Empty on
    /// nodes without the pulse plane.
    health: Vec<HealthStatus>,
}

fn cluster_view(reports: &[StatusReport], errors: &[String]) -> ClusterView {
    ClusterView {
        firing: reports.iter().any(|r| r.health.iter().any(|h| h.firing)),
        nodes: reports
            .iter()
            .map(|r| NodeView {
                node: r.node.raw(),
                role: r.role.clone(),
                domain: r.domain.map(|d| d.raw()),
                rm: r.rm.map(|n| n.raw()),
                load: r.load,
                active_hops: r.active_hops,
                open_spans: r.open_spans,
                sessions: r.sessions,
                msgs_in: r.transport.msgs_in(),
                msgs_out: r.transport.msgs_out(),
                traces_dropped: r.traces_dropped,
                health: r.health.clone(),
            })
            .collect(),
        unreachable: errors.to_vec(),
    }
}

fn render_table(reports: &[StatusReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:<8} {:<8} {:<6} {:>8} {:>6} {:>6} {:>7} {:>10} {:>10} {:>8}\n",
        "node",
        "role",
        "domain",
        "rm",
        "load",
        "hops",
        "spans",
        "sess",
        "msgs in",
        "msgs out",
        "dropped"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<6} {:<8} {:<8} {:<6} {:>8.1} {:>6} {:>6} {:>7} {:>10} {:>10} {:>8}\n",
            r.node.to_string(),
            r.role,
            r.domain
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            r.rm.map(|n| n.to_string()).unwrap_or_else(|| "-".into()),
            r.load,
            r.active_hops,
            r.open_spans,
            r.sessions
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            r.transport.msgs_in(),
            r.transport.msgs_out(),
            r.traces_dropped,
        ));
    }
    out
}

/// `arm top --addr HOST:PORT [--iters N] [--period-ms MS] [--json]`.
pub fn top(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let Some(addr) = flags.get("addr") else {
        return Err("top requires --addr HOST:PORT".into());
    };
    let json = flags.contains_key("json");
    // JSON defaults to one shot (a stream of documents is rarely wanted);
    // an explicit --iters still wins.
    let iters = parse_flag_u64(flags, "iters", if json { 1 } else { 0 })?; // 0 = forever
    let period = Duration::from_millis(parse_flag_u64(flags, "period-ms", 1000)?);
    let timeout = Duration::from_millis(parse_flag_u64(flags, "timeout-ms", 2000)?);
    let mut round: u64 = 0;
    loop {
        round += 1;
        let (reports, errors) = collect_reports(addr, false, timeout);
        if reports.is_empty() {
            return Err(format!(
                "no node answered a status request: {}",
                errors.join("; ")
            ));
        }
        if json {
            let view = cluster_view(&reports, &errors);
            println!(
                "{}",
                serde_json::to_string_pretty(&view).map_err(|e| e.to_string())?
            );
        } else {
            // Repaint in place on refresh; plain append on a single shot so
            // the output stays pipeable.
            if iters != 1 && round > 1 {
                print!("\x1b[2J\x1b[H");
            }
            let rms = reports.iter().filter(|r| r.role == "rm").count();
            println!(
                "arm top — {} nodes, {} domains (round {round})",
                reports.len(),
                rms
            );
            print!("{}", render_table(&reports));
            for e in &errors {
                println!("unreachable: {e}");
            }
        }
        if iters != 0 && round >= iters {
            return Ok(());
        }
        std::thread::sleep(period);
    }
}

/// `arm health --addr HOST:PORT [--json]`: one-shot fleet health probe.
///
/// Walks the cluster, prints every node's rule evaluations, and errors
/// (non-zero exit) when any reachable node has a firing rule — so the verb
/// slots directly into scripts and CI gates. Unreachable peers are
/// reported but do not fail the probe; a cluster where *nobody* answers
/// does.
pub fn health(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let Some(addr) = flags.get("addr") else {
        return Err("health requires --addr HOST:PORT".into());
    };
    let timeout = Duration::from_millis(parse_flag_u64(flags, "timeout-ms", 2000)?);
    let (reports, errors) = collect_reports(addr, false, timeout);
    if reports.is_empty() {
        return Err(format!(
            "no node answered a status request: {}",
            errors.join("; ")
        ));
    }
    let view = cluster_view(&reports, &errors);
    if flags.contains_key("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&view).map_err(|e| e.to_string())?
        );
    } else {
        for node in &view.nodes {
            let verdict = if node.health.is_empty() {
                "no pulse".to_string()
            } else if node.health.iter().any(|h| h.firing) {
                "UNHEALTHY".to_string()
            } else {
                format!("ok ({} rules quiet)", node.health.len())
            };
            println!("node n{:<4} {:<8} {verdict}", node.node, node.role);
            for h in node.health.iter().filter(|h| h.firing) {
                println!(
                    "  {:<16} {} (value {:.2}, threshold {:.2})",
                    h.rule, h.reason, h.value, h.threshold
                );
            }
        }
        for e in &errors {
            println!("unreachable: {e}");
        }
    }
    if view.firing {
        let firing: Vec<String> = view
            .nodes
            .iter()
            .flat_map(|n| {
                n.health
                    .iter()
                    .filter(|h| h.firing)
                    .map(move |h| format!("n{}:{}", n.node, h.rule))
            })
            .collect();
        return Err(format!("health rules firing: {}", firing.join(", ")));
    }
    Ok(())
}

/// Points a sparkline row keeps (also caps what one poll can append).
const WATCH_WINDOW: usize = 32;

/// Renders `points` as a unicode sparkline, scaled to the window's own
/// min/max (a flat series renders as a low bar, not noise).
fn sparkline(points: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = points.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(*v), hi.max(*v))
        });
    points
        .iter()
        .map(|v| {
            if !v.is_finite() {
                '?'
            } else if max <= min {
                BARS[0]
            } else {
                let t = (v - min) / (max - min);
                BARS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// `arm watch --addr HOST:PORT [--iters N] [--period-ms MS] [--metric S]`.
///
/// Polls the cluster's retained series incrementally: each node is asked
/// for everything after the cursor its previous answer returned, so steady
/// state ships only the new points. Rows are `(node, series)` sparklines
/// over the last [`WATCH_WINDOW`] samples; nodes with firing health rules
/// are flagged inline.
pub fn watch(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let Some(addr) = flags.get("addr") else {
        return Err("watch requires --addr HOST:PORT".into());
    };
    let iters = parse_flag_u64(flags, "iters", 0)?; // 0 = forever
    let period = Duration::from_millis(parse_flag_u64(flags, "period-ms", 1000)?);
    let timeout = Duration::from_millis(parse_flag_u64(flags, "timeout-ms", 2000)?);
    // Default to the pulse gauges — the fleet-health signals — rather than
    // every registered metric (a live node's registry is large).
    let filter = flags
        .get("metric")
        .cloned()
        .unwrap_or_else(|| "pulse_".into());

    let mut cursors: BTreeMap<String, u64> = BTreeMap::new();
    let mut history: BTreeMap<(NodeId, String), VecDeque<f64>> = BTreeMap::new();
    let mut round: u64 = 0;
    loop {
        round += 1;
        let (reports, errors) = collect_reports_with(
            addr,
            |a| StatusRequest {
                observer: OBSERVER,
                include_trace: false,
                series_cursor: Some(cursors.get(a).copied().unwrap_or(0)),
            },
            timeout,
        );
        if reports.is_empty() {
            return Err(format!(
                "no node answered a status request: {}",
                errors.join("; ")
            ));
        }
        for (from_addr, report) in &reports {
            if !report.series.is_empty() || report.series.next_cursor > 0 {
                cursors.insert(from_addr.clone(), report.series.next_cursor);
            }
            for slice in &report.series.series {
                if !slice.key.contains(filter.as_str()) {
                    continue;
                }
                let row = history
                    .entry((report.node, format!("{} {}", slice.key, slice.kind)))
                    .or_default();
                for (_, p) in slice.points() {
                    if row.len() == WATCH_WINDOW {
                        row.pop_front();
                    }
                    row.push_back(p);
                }
            }
        }
        if round > 1 {
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "arm watch — {} nodes, {} series (round {round}, every {}ms, filter '{filter}')",
            reports.len(),
            history.len(),
            period.as_millis()
        );
        for (_, report) in &reports {
            let firing: Vec<&str> = report
                .health
                .iter()
                .filter(|h| h.firing)
                .map(|h| h.rule.as_str())
                .collect();
            let flag = if firing.is_empty() {
                String::new()
            } else {
                format!("  !! {}", firing.join(", "))
            };
            println!(
                "node {:<4} {:<8}{flag}",
                report.node.to_string(),
                report.role
            );
            for ((node, key), row) in &history {
                if *node != report.node || row.is_empty() {
                    continue;
                }
                let points: Vec<f64> = row.iter().copied().collect();
                println!(
                    "  {:<44} {} {:>12.2}",
                    key,
                    sparkline(&points),
                    points.last().copied().unwrap_or(0.0)
                );
            }
        }
        for e in &errors {
            println!("unreachable: {e}");
        }
        if iters != 0 && round >= iters {
            return Ok(());
        }
        std::thread::sleep(period);
    }
}

/// Verifies the merged timeline contains at least one complete causal
/// chain: a trace whose events include a `Submit` and a `Terminal` task
/// phase, whose every parent span resolves within the same trace, and
/// which crosses at least two peers. Returns a description of the best
/// chain, or an error naming what was missing.
fn verify_chain(events: &[TraceEvent]) -> Result<String, String> {
    let mut by_trace: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events.iter().filter(|e| e.trace_id != 0) {
        by_trace.entry(ev.trace_id).or_default().push(ev);
    }
    if by_trace.is_empty() {
        return Err("no causally-tagged events in the merged timeline".into());
    }
    let mut best_failure = String::from("no trace carries a submit phase");
    for (trace, evs) in &by_trace {
        let has_submit = evs.iter().any(|e| {
            matches!(
                e.kind,
                TraceKind::TaskPhase {
                    phase: TaskPhase::Submit,
                    ..
                }
            )
        });
        if !has_submit {
            continue;
        }
        let has_terminal = evs.iter().any(|e| {
            matches!(
                e.kind,
                TraceKind::TaskPhase {
                    phase: TaskPhase::Terminal,
                    ..
                }
            )
        });
        if !has_terminal {
            best_failure = format!("trace {trace:#x} has a submit but no terminal phase");
            continue;
        }
        let spans: BTreeSet<u64> = evs.iter().map(|e| e.span).collect();
        if let Some(orphan) = evs
            .iter()
            .find(|e| e.parent != 0 && !spans.contains(&e.parent))
        {
            best_failure = format!(
                "trace {trace:#x}: span {:#x} has unresolvable parent {:#x}",
                orphan.span, orphan.parent
            );
            continue;
        }
        let peers: BTreeSet<NodeId> = evs.iter().map(|e| e.peer).collect();
        if peers.len() < 2 {
            best_failure = format!("trace {trace:#x} never crossed a node boundary");
            continue;
        }
        return Ok(format!(
            "trace {trace:#x}: {} events across {} nodes, submit→terminal chain complete",
            evs.len(),
            peers.len()
        ));
    }
    Err(best_failure)
}

/// `arm trace --addr HOST:PORT [--out merged.jsonl] [--expect-chain]`.
pub fn trace(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let Some(addr) = flags.get("addr") else {
        return Err("trace requires --addr HOST:PORT".into());
    };
    let out = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("merged.jsonl");
    let timeout = Duration::from_millis(parse_flag_u64(flags, "timeout-ms", 2000)?);
    let (mut reports, errors) = collect_reports(addr, true, timeout);
    if reports.is_empty() {
        return Err(format!(
            "no node answered a status request: {}",
            errors.join("; ")
        ));
    }
    // Each node's ring is already time-ordered, so the rings k-way merge
    // in one streaming pass instead of a full re-sort of the concatenation.
    let mut rings = Vec::with_capacity(reports.len());
    let mut dropped_total: u64 = 0;
    for r in &mut reports {
        let ring = r.trace.take().unwrap_or_default();
        println!(
            "node {:<4} ring {:>6} events, {} dropped",
            r.node.to_string(),
            ring.len(),
            r.traces_dropped
        );
        dropped_total += r.traces_dropped;
        rings.push(ring);
    }
    for e in &errors {
        println!("unreachable: {e}");
    }
    let merged = merge_timelines(rings);
    let mut buf = Vec::new();
    write_jsonl(&mut buf, merged.iter()).map_err(|e| format!("serialising timeline: {e}"))?;
    std::fs::write(out, buf).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "merged timeline: {} events from {} nodes ({} dropped before collection) -> {out}",
        merged.len(),
        reports.len(),
        dropped_total
    );
    if flags.contains_key("expect-chain") {
        let summary = verify_chain(&merged).map_err(|e| format!("causal chain incomplete: {e}"))?;
        println!("{summary}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_util::SimTime;

    fn phase_event(
        at: u64,
        peer: u64,
        trace: u64,
        span: u64,
        parent: u64,
        phase: TaskPhase,
    ) -> TraceEvent {
        TraceEvent::new(
            SimTime::from_millis(at),
            NodeId::new(peer),
            None,
            TraceKind::TaskPhase {
                task: arm_util::TaskId::new(1),
                phase,
            },
        )
        .causal(trace, span, parent)
    }

    #[test]
    fn chain_verification_accepts_a_complete_cross_node_chain() {
        let events = vec![
            phase_event(1, 4, 77, 100, 0, TaskPhase::Submit),
            phase_event(2, 1, 77, 200, 100, TaskPhase::Allocation),
            phase_event(3, 1, 77, 300, 200, TaskPhase::Terminal),
        ];
        let summary = verify_chain(&events).unwrap();
        assert!(summary.contains("2 nodes"), "{summary}");
    }

    #[test]
    fn sparkline_scales_and_tolerates_non_finite() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▁▁▁");
        let line = sparkline(&[0.0, 0.5, 1.0, f64::NAN]);
        assert_eq!(line.chars().count(), 4);
        assert!(line.starts_with('▁'), "{line}");
        assert!(line.contains('█'), "{line}");
        assert!(line.ends_with('?'), "{line}");
    }

    fn fast_net_config(seed: u64) -> arm_runtime::net::NetPeerConfig {
        use arm_runtime::net::{NetPeerConfig, PulseConfig};
        NetPeerConfig {
            protocol: arm_core::ProtocolConfig {
                heartbeat_period: arm_util::SimDuration::from_millis(100),
                heartbeat_timeout: arm_util::SimDuration::from_millis(400),
                report_period: arm_util::SimDuration::from_millis(100),
                join_timeout: arm_util::SimDuration::from_millis(400),
                ..arm_core::ProtocolConfig::default()
            },
            seed,
            tracing: true,
            pulse: Some(PulseConfig {
                period: Duration::from_millis(100),
                ..PulseConfig::default()
            }),
            store: None,
        }
    }

    fn spawn_line(n: u64) -> Vec<arm_runtime::PeerSpawn> {
        (1..=n)
            .map(|i| arm_runtime::PeerSpawn {
                id: NodeId::new(i),
                capacity: 100.0,
                bandwidth_kbps: 10_000,
                objects: vec![],
                services: vec![],
                bootstrap: (i > 1).then(|| NodeId::new(1)),
            })
            .collect()
    }

    /// Polls until `pred` holds on the collected reports, or panics.
    fn wait_for(
        seed_addr: &str,
        what: &str,
        secs: u64,
        mut pred: impl FnMut(&[StatusReport]) -> bool,
    ) {
        let deadline = std::time::Instant::now() + Duration::from_secs(secs);
        loop {
            let (reports, _) = collect_reports(seed_addr, false, Duration::from_secs(2));
            if pred(&reports) {
                return;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{what} not reached within {secs}s: {reports:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    #[test]
    fn top_and_trace_observe_a_live_cluster() {
        use arm_runtime::net::NetCluster;

        let cluster = NetCluster::start(
            spawn_line(3),
            &fast_net_config(11),
            arm_wire::TcpOptions::default(),
        )
        .unwrap();
        let seed_addr = cluster.listen_addrs()[0].1.clone();

        // Wait until the overlay has formed before observing.
        wait_for(&seed_addr, "overlay", 10, |reports| {
            reports.len() == 3 && reports.iter().any(|r| r.role == "rm")
        });

        let mut flags = BTreeMap::new();
        flags.insert("addr".to_string(), seed_addr.clone());
        flags.insert("iters".to_string(), "1".to_string());
        top(&flags).unwrap();
        // The JSON view parses and carries every node with health rules.
        flags.insert("json".to_string(), "true".to_string());
        top(&flags).unwrap();

        // Two fast watch rounds exercise the cursor protocol (second poll
        // is incremental) and the sparkline renderer.
        let mut flags = BTreeMap::new();
        flags.insert("addr".to_string(), seed_addr.clone());
        flags.insert("iters".to_string(), "2".to_string());
        flags.insert("period-ms".to_string(), "150".to_string());
        watch(&flags).unwrap();

        let out = std::env::temp_dir().join("arm-cli-obs-test.jsonl");
        let mut flags = BTreeMap::new();
        flags.insert("addr".to_string(), seed_addr);
        flags.insert("out".to_string(), out.to_str().unwrap().to_string());
        trace(&flags).unwrap();
        cluster.shutdown();

        let jsonl = std::fs::read_to_string(&out).unwrap();
        let events = arm_telemetry::TraceLog::parse_jsonl(&jsonl).unwrap();
        assert!(!events.is_empty(), "merged timeline has events");
        // The merged file carries the schema header and is causally ordered.
        assert!(jsonl.lines().next().unwrap().contains("\"schema\""));
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    /// The acceptance path for the pulse plane: kill the RM of a live
    /// cluster, watch the silence rules fire (`arm health` exits non-zero),
    /// then watch failover promote a replacement and the rules clear.
    #[test]
    fn health_detects_rm_failure_and_recovery() {
        use arm_runtime::net::{NetCluster, PulseConfig};
        use arm_telemetry::HealthThresholds;

        let mut config = fast_net_config(13);
        config.tracing = false;
        // Failover slow enough that the rm_stale rule (0.8s silence,
        // sustained over 3 of the 100ms pulse ticks) fires well before the
        // backup promotes.
        config.protocol.heartbeat_timeout = arm_util::SimDuration::from_millis(2500);
        config.pulse = Some(PulseConfig {
            period: Duration::from_millis(100),
            thresholds: HealthThresholds {
                rm_silence_secs: 0.8,
                ..HealthThresholds::default()
            },
            ..PulseConfig::default()
        });
        let mut cluster =
            NetCluster::start(spawn_line(4), &config, arm_wire::TcpOptions::default()).unwrap();
        let addrs = cluster.listen_addrs();
        let seed_addr = addrs[0].1.clone();

        let mut rm_id = None;
        wait_for(&seed_addr, "overlay with an RM", 10, |reports| {
            rm_id = reports.iter().find(|r| r.role == "rm").map(|r| r.node);
            reports.len() == 4 && rm_id.is_some()
        });
        let rm_id = rm_id.unwrap();
        // Observe through a node that survives the fault.
        let observer_addr = addrs
            .iter()
            .find(|(id, _)| *id != rm_id)
            .expect("a non-RM node")
            .1
            .clone();
        let mut flags = BTreeMap::new();
        flags.insert("addr".to_string(), observer_addr);

        // Healthy overlay: the probe passes (text and JSON shapes both).
        health(&flags).unwrap();

        // Let the RM designate its backup before we kill it, so recovery
        // has somewhere to go.
        std::thread::sleep(Duration::from_millis(700));
        assert!(cluster.stop_peer(rm_id), "the RM was running");

        // The fault is detected: rm_stale fires and the probe exits
        // non-zero, naming the rule.
        let deadline = std::time::Instant::now() + Duration::from_secs(8);
        loop {
            match health(&flags) {
                Err(e) => {
                    assert!(
                        e.contains("rm_stale") || e.contains("election_stalled"),
                        "unexpected failure: {e}"
                    );
                    break;
                }
                Ok(()) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "health never saw the dead RM"
                    );
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }

        // Failover promotes the backup; the silence clears and the probe
        // passes again (the dead node's address stays a warning only).
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while health(&flags).is_err() {
            assert!(
                std::time::Instant::now() < deadline,
                "health never cleared after failover"
            );
            std::thread::sleep(Duration::from_millis(200));
        }
        cluster.shutdown();
    }

    #[test]
    fn chain_verification_rejects_orphans_and_single_node_traces() {
        // Orphan parent.
        let orphan = vec![
            phase_event(1, 4, 77, 100, 0, TaskPhase::Submit),
            phase_event(3, 1, 77, 300, 999, TaskPhase::Terminal),
        ];
        assert!(verify_chain(&orphan).unwrap_err().contains("unresolvable"));
        // Never left one node.
        let local = vec![
            phase_event(1, 4, 77, 100, 0, TaskPhase::Submit),
            phase_event(3, 4, 77, 300, 100, TaskPhase::Terminal),
        ];
        assert!(verify_chain(&local).unwrap_err().contains("node boundary"));
        // No terminal.
        let open = vec![phase_event(1, 4, 77, 100, 0, TaskPhase::Submit)];
        assert!(verify_chain(&open).unwrap_err().contains("no terminal"));
        // Nothing tagged at all.
        assert!(verify_chain(&[]).is_err());
    }
}
