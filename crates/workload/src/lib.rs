//! Workload generation for the transcoding middleware.
//!
//! The paper's motivating application (§1) is media streaming with
//! on-demand transcoding: users request objects by name with "a set of
//! acceptable bitrates, resolutions and codecs" (§4.3). This crate
//! synthesizes that workload deterministically:
//!
//! * a **format ladder** — a quality-ordered chain of media formats, the
//!   application states of the resource graph;
//! * a **catalog** of media objects, replicated across peers with
//!   Zipf-distributed popularity;
//! * per-peer **transcoder inventories** that connect ladder steps;
//! * **task traces**: Poisson arrivals of user requests with exponential
//!   session lengths and uniformly drawn deadlines.
//!
//! All draws flow through labelled [`DetRng`] streams so that two policy
//! runs see *identical* workloads (common random numbers).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use arm_model::{Codec, MediaFormat, MediaObject, QosSpec, Resolution, ServiceSpec, TaskSpec};
use arm_util::{DetRng, NodeId, ObjectId, ServiceId, SimDuration, SimTime, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The default quality ladder: five formats from the paper's example
/// source (800×600 MPEG-2 @ 512 kbps) down to a handheld profile.
pub fn default_format_ladder() -> Vec<MediaFormat> {
    vec![
        MediaFormat::new(Codec::Mpeg2, Resolution::SVGA, 512),
        MediaFormat::new(Codec::Mpeg2, Resolution::VGA, 256),
        MediaFormat::new(Codec::Mpeg4, Resolution::VGA, 128),
        MediaFormat::new(Codec::Mpeg4, Resolution::QVGA, 64),
        MediaFormat::new(Codec::H263, Resolution::QCIF, 32),
    ]
}

/// Workload parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of distinct media objects in the catalog.
    pub num_objects: usize,
    /// Replicas of each object (placed on distinct peers).
    pub object_replicas: usize,
    /// Zipf exponent of object popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// The format ladder, highest quality first. Objects are stored at
    /// rung 0..2; requests target strictly lower rungs.
    pub formats: Vec<MediaFormat>,
    /// Transcoders granted to each peer (drawn from ladder steps and
    /// skips). Zero disables an individual peer's services.
    pub transcoders_per_peer: usize,
    /// Work scale of transcoders (work units per abstract transcode unit)
    /// — larger means heavier CPU demand per session.
    pub work_scale: f64,
    /// Mean task arrival rate for the whole system, tasks per second
    /// (Poisson process).
    pub arrival_rate: f64,
    /// Mean streaming-session duration in seconds (exponential).
    pub session_mean_secs: f64,
    /// Deadline drawn uniformly from this range, seconds.
    pub deadline_secs: (f64, f64),
    /// Length of the trace.
    pub horizon: SimTime,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            num_objects: 20,
            object_replicas: 2,
            zipf_exponent: 0.8,
            formats: default_format_ladder(),
            transcoders_per_peer: 3,
            work_scale: 5.0,
            arrival_rate: 0.5,
            session_mean_secs: 60.0,
            deadline_secs: (2.0, 8.0),
            horizon: SimTime::from_secs(600),
        }
    }
}

/// A peer's generated inventory.
#[derive(Debug, Clone, Default)]
pub struct Inventory {
    /// Objects stored on the peer.
    pub objects: Vec<MediaObject>,
    /// Transcoding services the peer offers.
    pub services: Vec<ServiceSpec>,
}

/// A generated request trace entry: when, who asks, and for what.
#[derive(Debug, Clone)]
pub struct TaskArrival {
    /// Arrival time.
    pub at: SimTime,
    /// The requesting peer.
    pub requester: NodeId,
    /// The task (with `submitted_at` left at zero — the submitting node
    /// stamps it).
    pub task: TaskSpec,
}

/// All transcoder steps of a ladder: adjacent rungs plus one-rung skips.
fn ladder_steps(formats: &[MediaFormat]) -> Vec<(MediaFormat, MediaFormat)> {
    let mut steps = Vec::new();
    for i in 0..formats.len().saturating_sub(1) {
        steps.push((formats[i], formats[i + 1]));
        if i + 2 < formats.len() {
            steps.push((formats[i], formats[i + 2]));
        }
    }
    steps
}

/// Generates per-peer inventories: object replicas on the first
/// `…replicas` random peers per object, transcoders sampled from the
/// ladder steps. Peers are keyed by id; generation is deterministic in the
/// RNG stream.
pub fn generate_inventories(
    peers: &[NodeId],
    cfg: &WorkloadConfig,
    rng: &DetRng,
) -> BTreeMap<NodeId, Inventory> {
    assert!(!peers.is_empty());
    assert!(
        cfg.formats.len() >= 2,
        "need a ladder of at least 2 formats"
    );
    let mut inv: BTreeMap<NodeId, Inventory> =
        peers.iter().map(|p| (*p, Inventory::default())).collect();

    // Objects: stored at a top-third rung, replicated on distinct peers.
    let mut obj_rng = rng.stream("objects");
    let top_rungs = (cfg.formats.len() / 3).max(1);
    for k in 0..cfg.num_objects {
        let rung = obj_rng.index(top_rungs);
        let object = MediaObject::new(
            ObjectId::new(k as u64),
            format!("obj-{k}"),
            cfg.formats[rung],
            obj_rng.uniform(30.0, 300.0),
        );
        let replicas = cfg.object_replicas.min(peers.len());
        for &pi in obj_rng.sample_indices(peers.len(), replicas).iter() {
            inv.get_mut(&peers[pi])
                .unwrap()
                .objects
                .push(object.clone());
        }
    }

    // Transcoders: each peer draws `transcoders_per_peer` distinct steps.
    let steps = ladder_steps(&cfg.formats);
    for (pi, peer) in peers.iter().enumerate() {
        let mut t_rng = rng.stream_idx("transcoders", peer.raw());
        let count = cfg.transcoders_per_peer.min(steps.len());
        for (si, &step_idx) in t_rng.sample_indices(steps.len(), count).iter().enumerate() {
            let (input, output) = steps[step_idx];
            let id = ServiceId::new((pi as u64) * 1_000 + si as u64);
            inv.get_mut(peer)
                .unwrap()
                .services
                .push(ServiceSpec::transcoder(id, input, output, cfg.work_scale));
        }
    }
    inv
}

/// Generates a Poisson task trace over the configured horizon. Requesters
/// are drawn uniformly from `users`; objects by Zipf popularity; target
/// formats strictly below the object's rung.
pub fn generate_tasks(
    users: &[NodeId],
    inventories: &BTreeMap<NodeId, Inventory>,
    cfg: &WorkloadConfig,
    rng: &DetRng,
) -> Vec<TaskArrival> {
    assert!(!users.is_empty());
    // Object rungs (needed to pick strictly-lower targets).
    let mut object_rung: BTreeMap<String, usize> = BTreeMap::new();
    for inv in inventories.values() {
        for o in &inv.objects {
            let rung = cfg
                .formats
                .iter()
                .position(|f| *f == o.format)
                .expect("object format on ladder");
            object_rung.insert(o.name.clone(), rung);
        }
    }
    let names: Vec<String> = (0..cfg.num_objects).map(|k| format!("obj-{k}")).collect();

    let mut arr_rng = rng.stream("arrivals");
    let mut trace = Vec::new();
    let mut t = 0.0;
    let mut task_id = 0u64;
    loop {
        t += arr_rng.exponential(1.0 / cfg.arrival_rate);
        let at = SimTime::from_secs_f64(t);
        if at >= cfg.horizon {
            break;
        }
        let name = &names[arr_rng.zipf(names.len(), cfg.zipf_exponent)];
        let Some(&rung) = object_rung.get(name) else {
            continue; // object generated but placed on no live peer
        };
        if rung + 1 >= cfg.formats.len() {
            continue;
        }
        let target_rung = rung + 1 + arr_rng.index(cfg.formats.len() - rung - 1);
        let requester = users[arr_rng.index(users.len())];
        let deadline = arr_rng.uniform(cfg.deadline_secs.0, cfg.deadline_secs.1);
        task_id += 1;
        trace.push(TaskArrival {
            at,
            requester,
            task: TaskSpec {
                id: TaskId::new(task_id),
                name: name.clone(),
                requester,
                initial_format: cfg.formats[rung],
                acceptable_formats: vec![cfg.formats[target_rung]],
                qos: QosSpec::with_deadline(SimDuration::from_secs_f64(deadline)),
                submitted_at: SimTime::ZERO,
                session_secs: arr_rng.exponential(cfg.session_mean_secs),
            },
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn ladder_is_quality_ordered() {
        let ladder = default_format_ladder();
        assert_eq!(ladder.len(), 5);
        for w in ladder.windows(2) {
            assert!(w[0].bitrate_kbps > w[1].bitrate_kbps);
            assert!(w[0].resolution.pixels() >= w[1].resolution.pixels());
        }
    }

    #[test]
    fn ladder_steps_cover_adjacent_and_skip() {
        let steps = ladder_steps(&default_format_ladder());
        // 4 adjacent + 3 skips.
        assert_eq!(steps.len(), 7);
        let ladder = default_format_ladder();
        assert!(steps.contains(&(ladder[0], ladder[1])));
        assert!(steps.contains(&(ladder[0], ladder[2])));
        assert!(steps.contains(&(ladder[3], ladder[4])));
    }

    #[test]
    fn inventories_replicate_objects() {
        let ps = peers(10);
        let cfg = WorkloadConfig::default();
        let inv = generate_inventories(&ps, &cfg, &DetRng::new(1));
        let total_objects: usize = inv.values().map(|i| i.objects.len()).sum();
        assert_eq!(total_objects, cfg.num_objects * cfg.object_replicas);
        // Every peer has the configured number of transcoders.
        for i in inv.values() {
            assert_eq!(i.services.len(), cfg.transcoders_per_peer);
        }
        // Replicas of one object are on distinct peers.
        let mut holders: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
        for (p, i) in &inv {
            for o in &i.objects {
                holders.entry(o.name.clone()).or_default().push(*p);
            }
        }
        for (name, hs) in holders {
            let mut uniq = hs.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), hs.len(), "{name} replicated on distinct peers");
        }
    }

    #[test]
    fn trace_is_time_ordered_within_horizon() {
        let ps = peers(8);
        let cfg = WorkloadConfig::default();
        let inv = generate_inventories(&ps, &cfg, &DetRng::new(2));
        let trace = generate_tasks(&ps, &inv, &cfg, &DetRng::new(2));
        assert!(!trace.is_empty());
        for w in trace.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(trace.iter().all(|a| a.at < cfg.horizon));
        // ~ rate × horizon arrivals expected.
        let expected = cfg.arrival_rate * cfg.horizon.as_secs_f64();
        assert!((trace.len() as f64) > expected * 0.7);
        assert!((trace.len() as f64) < expected * 1.3);
    }

    #[test]
    fn tasks_request_strictly_lower_rungs() {
        let ps = peers(8);
        let cfg = WorkloadConfig::default();
        let inv = generate_inventories(&ps, &cfg, &DetRng::new(3));
        let trace = generate_tasks(&ps, &inv, &cfg, &DetRng::new(3));
        let ladder = &cfg.formats;
        for a in &trace {
            let src = ladder
                .iter()
                .position(|f| *f == a.task.initial_format)
                .unwrap();
            for target in &a.task.acceptable_formats {
                let dst = ladder.iter().position(|f| f == target).unwrap();
                assert!(dst > src, "target below source on the ladder");
            }
            assert!(a.task.session_secs > 0.0);
            let d = a.task.qos.deadline.as_secs_f64();
            assert!(d >= cfg.deadline_secs.0 && d <= cfg.deadline_secs.1);
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let ps = peers(8);
        let cfg = WorkloadConfig {
            arrival_rate: 5.0,
            ..WorkloadConfig::default()
        };
        let inv = generate_inventories(&ps, &cfg, &DetRng::new(4));
        let trace = generate_tasks(&ps, &inv, &cfg, &DetRng::new(4));
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for a in &trace {
            *counts.entry(a.task.name.as_str()).or_default() += 1;
        }
        let hot = counts.get("obj-0").copied().unwrap_or(0);
        let cold = counts.get("obj-19").copied().unwrap_or(0);
        assert!(hot > cold, "Zipf skew: hot {hot} vs cold {cold}");
    }

    #[test]
    fn deterministic_given_seed() {
        let ps = peers(6);
        let cfg = WorkloadConfig::default();
        let a = generate_inventories(&ps, &cfg, &DetRng::new(9));
        let b = generate_inventories(&ps, &cfg, &DetRng::new(9));
        for (p, inv) in &a {
            assert_eq!(inv.objects, b[p].objects);
            assert_eq!(inv.services, b[p].services);
        }
        let ta = generate_tasks(&ps, &a, &cfg, &DetRng::new(9));
        let tb = generate_tasks(&ps, &b, &cfg, &DetRng::new(9));
        assert_eq!(ta.len(), tb.len());
        for (x, y) in ta.iter().zip(&tb) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.task, y.task);
        }
    }

    #[test]
    fn unqualified_edge_cases() {
        // Single peer, replicas clamp to 1.
        let ps = peers(1);
        let cfg = WorkloadConfig {
            object_replicas: 5,
            num_objects: 3,
            ..WorkloadConfig::default()
        };
        let inv = generate_inventories(&ps, &cfg, &DetRng::new(5));
        assert_eq!(inv[&NodeId::new(0)].objects.len(), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every generated task names an object that exists in some
        /// inventory, with the correct stored format.
        #[test]
        fn tasks_reference_real_objects(seed in 0u64..200, peers in 2usize..12) {
            let ps: Vec<NodeId> = (0..peers as u64).map(NodeId::new).collect();
            let cfg = WorkloadConfig {
                horizon: SimTime::from_secs(120),
                ..WorkloadConfig::default()
            };
            let inv = generate_inventories(&ps, &cfg, &DetRng::new(seed));
            let trace = generate_tasks(&ps, &inv, &cfg, &DetRng::new(seed));
            for arrival in &trace {
                let found = inv.values().flat_map(|i| &i.objects).find(|o| {
                    o.name == arrival.task.name && o.format == arrival.task.initial_format
                });
                prop_assert!(found.is_some(), "task names unknown object {}", arrival.task.name);
                prop_assert!(ps.contains(&arrival.requester));
            }
        }

        /// All generated transcoders connect formats that are on the
        /// ladder, always downward in quality.
        #[test]
        fn transcoders_stay_on_ladder(seed in 0u64..200) {
            let ps: Vec<NodeId> = (0..8u64).map(NodeId::new).collect();
            let cfg = WorkloadConfig::default();
            let inv = generate_inventories(&ps, &cfg, &DetRng::new(seed));
            for i in inv.values() {
                for s in &i.services {
                    let from = cfg.formats.iter().position(|f| *f == s.input);
                    let to = cfg.formats.iter().position(|f| *f == s.output);
                    prop_assert!(from.is_some() && to.is_some());
                    prop_assert!(to.unwrap() > from.unwrap(), "transcoders go down-ladder");
                    prop_assert!(s.cost.work_per_sec > 0.0);
                }
            }
        }
    }
}
