//! Offline stand-in for `serde_json`: JSON text ⇄ the shim's [`Value`]
//! data model ⇄ user types via `serde::{Serialize, Deserialize}`.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to human-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Converts a value into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a typed value from the data model.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value).map_err(Error::from)
}

// ------------------------------------------------------------------ writing

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; follow serde_json's lossy mode.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats readable and round-trippable.
        out.push_str(&format!("{:.1}", f));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    const STEP: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_value(other, out),
    }
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error::msg(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character '{}' at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pair handling for completeness.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if self.peek() == Some(b'\\') {
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        s.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                    }
                    _ => return Err(Error::msg("invalid escape")),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = chunk.chars().next().unwrap();
                    s.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| Error::msg("invalid \\u escape"))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number {text:?}")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::msg("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(entries)),
                _ => return Err(Error::msg("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1.5f64, 2u64), (0.25, 9)];
        let text = to_string(&v).unwrap();
        let back: Vec<(f64, u64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_formats_round_trip() {
        for f in [0.1, 1e-9, 123456.789, 3.0, -2.5e30, f64::MAX] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "text {text}");
        }
    }

    #[test]
    fn pretty_output_parses() {
        let v = vec![vec![1u64, 2], vec![], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        let back: Vec<Vec<u64>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn unicode_strings() {
        let s = String::from("héllo ☃ \u{1F600}");
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("x").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
