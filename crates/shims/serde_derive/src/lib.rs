//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! `serde` shim.
//!
//! The build environment has no access to `syn`/`quote`, so this macro
//! hand-parses the derive input token stream. It supports exactly the type
//! shapes used in this workspace:
//!
//! * named-field structs            → JSON objects
//! * tuple structs with one field   → transparent (the inner value)
//! * tuple structs with ≥ 2 fields  → JSON arrays
//! * unit structs                   → `null`
//! * enums (unit / tuple / struct variants), externally tagged:
//!   `Unit` → `"Unit"`, `Tuple(a, b)` → `{"Tuple": [a, b]}`,
//!   `Struct { x }` → `{"Struct": {"x": ...}}`
//!
//! Named fields additionally honour two field-level `#[serde(...)]`
//! attributes, matching the real serde's semantics closely enough for this
//! workspace's versioned wire/trace formats:
//!
//! * `#[serde(default)]` — a missing (or `null`) field deserializes via
//!   `Default::default()` instead of erroring;
//! * `#[serde(skip_serializing_if = "path")]` — the field is omitted from
//!   the serialized object when `path(&field)` returns true (`path`
//!   resolves in the deriving type's scope, as with real serde).
//!
//! Other `#[serde(...)]` contents are rejected with a compile error rather
//! than silently ignored.
//!
//! Generic types are rejected with a compile error: nothing in this
//! workspace derives serde traits on generics, and supporting them without
//! `syn` is not worth the complexity.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// One named field plus its recognised `#[serde(...)]` options.
struct Field {
    name: String,
    default: bool,
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Input {
    name: String,
    data: Data,
}

fn ident_text(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skips any number of `#[...]` attributes starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len()
        && is_punct(&tokens[i], '#')
        && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Skips attributes starting at `i` like [`skip_attrs`], but parses any
/// `#[serde(...)]` among them into `(default, skip_serializing_if)`.
fn parse_field_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool, Option<String>) {
    let mut default = false;
    let mut skip_if = None;
    while i + 1 < tokens.len() && is_punct(&tokens[i], '#') {
        let TokenTree::Group(attr) = &tokens[i + 1] else {
            break;
        };
        if attr.delimiter() != Delimiter::Bracket {
            break;
        }
        let attr_tokens: Vec<TokenTree> = attr.stream().into_iter().collect();
        if attr_tokens.first().and_then(ident_text).as_deref() == Some("serde") {
            let inner = match attr_tokens.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
                other => panic!("expected `#[serde(...)]`, found {other:?}"),
            };
            let items: Vec<TokenTree> = inner.into_iter().collect();
            let mut j = 0;
            while j < items.len() {
                match ident_text(&items[j]).as_deref() {
                    Some("default") => {
                        default = true;
                        j += 1;
                    }
                    Some("skip_serializing_if") => {
                        assert!(
                            j + 2 < items.len() && is_punct(&items[j + 1], '='),
                            "expected `skip_serializing_if = \"path\"`"
                        );
                        let lit = items[j + 2].to_string();
                        skip_if = Some(lit.trim_matches('"').to_string());
                        j += 3;
                    }
                    _ => panic!(
                        "serde shim derive only supports `default` and \
                         `skip_serializing_if` field attributes, found {:?}",
                        items[j]
                    ),
                }
                if j < items.len() && is_punct(&items[j], ',') {
                    j += 1;
                }
            }
        }
        i += 2;
    }
    (i, default, skip_if)
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && ident_text(&tokens[i]).as_deref() == Some("pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Advances past one type (or expression) up to a top-level `,`, tracking
/// angle-bracket depth. Returns the index just past the `,`, or the end.
fn skip_past_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses `{ a: T, b: U }` named-field contents into fields with their
/// recognised `#[serde(...)]` options.
fn parse_named_fields(group: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, default, skip_if) = parse_field_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        if i >= tokens.len() {
            break;
        }
        let name = ident_text(&tokens[i]).expect("expected field name");
        fields.push(Field {
            name: name.trim_start_matches("r#").to_string(),
            default,
            skip_if,
        });
        i += 1;
        assert!(
            i < tokens.len() && is_punct(&tokens[i], ':'),
            "expected ':' after field name"
        );
        i = skip_past_comma(&tokens, i + 1);
    }
    fields
}

/// Counts the fields of `( T, U, ... )` tuple contents.
fn count_tuple_fields(group: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_past_comma(&tokens, i);
    }
    count
}

fn parse_variants(group: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_text(&tokens[i]).expect("expected variant name");
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(&g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        i = if matches!(tokens.get(i), Some(t) if is_punct(t, '=')) {
            skip_past_comma(&tokens, i + 1)
        } else if matches!(tokens.get(i), Some(t) if is_punct(t, ',')) {
            i + 1
        } else {
            i
        };
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let keyword = ident_text(&tokens[i]).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_text(&tokens[i]).expect("expected type name");
    i += 1;
    assert!(
        !matches!(tokens.get(i), Some(t) if is_punct(t, '<')),
        "serde shim derive does not support generic types (deriving on `{name}`)"
    );
    let data = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(&g.stream()))
            }
            _ => Data::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(&g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("serde derive supports structs and enums, found `{other}`"),
    };
    Input { name, data }
}

// ------------------------------------------------------------------ codegen

/// Statements building `entries` for a named-field object, honouring
/// `skip_serializing_if`. `access` maps a field name to the expression the
/// serializer reads it through (`&self.x` for structs, `x` for match binds).
fn named_entries(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut stmts =
        vec!["let mut entries: Vec<(String, ::serde::Value)> = Vec::new();".to_string()];
    for f in fields {
        let n = &f.name;
        let push = format!(
            "entries.push((\"{n}\".to_string(), ::serde::Serialize::to_value({})));",
            access(n)
        );
        match &f.skip_if {
            Some(path) => stmts.push(format!("if !{path}({}) {{ {push} }}", access(n))),
            None => stmts.push(push),
        }
    }
    stmts.join("\n")
}

/// `#[derive(Serialize)]` — see the crate docs for the mapping.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Input { name, data } = parse_input(input);
    let body = match &data {
        Data::NamedStruct(fields) => {
            format!(
                "{{ {} ::serde::Value::Object(entries) }}",
                named_entries(fields, |n| format!("&self.{n}"))
            )
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{ {entries} ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(entries))]) }}",
                                binds = binds.join(", "),
                                entries = named_entries(fields, |n| n.to_string())
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// One `name: value` initializer for a named field read out of `source`,
/// honouring `#[serde(default)]` for missing/`null` fields.
fn named_init(f: &Field, ctx: &str, source: &str) -> String {
    let n = &f.name;
    if f.default {
        format!(
            "{n}: match {source}.field(\"{n}\") {{\n\
                 ::serde::Value::Null => ::core::default::Default::default(),\n\
                 present => <_ as ::serde::Deserialize>::from_value(present)\
                     .map_err(|e| e.context(\"{ctx}.{n}\"))?,\n\
             }}"
        )
    } else {
        format!(
            "{n}: <_ as ::serde::Deserialize>::from_value({source}.field(\"{n}\"))\
                 .map_err(|e| e.context(\"{ctx}.{n}\"))?"
        )
    }
}

/// `#[derive(Deserialize)]` — see the crate docs for the mapping.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Input { name, data } = parse_input(input);
    let body = match &data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| named_init(f, &name, "v"))
                .collect();
            format!(
                "if v.as_object().is_none() {{ return Err(::serde::Error::expected(\"object ({name})\", v)); }}\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Data::TupleStruct(1) => format!(
            "Ok({name}(<_ as ::serde::Deserialize>::from_value(v)\
                 .map_err(|e| e.context(\"{name}\"))?))"
        ),
        Data::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "<_ as ::serde::Deserialize>::from_value(&items[{i}])\
                             .map_err(|e| e.context(\"{name}.{i}\"))?"
                    )
                })
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array ({name})\", v))?;\n\
                 if items.len() != {n} {{ return Err(::serde::Error::msg(format!(\"expected {n} elements for {name}, found {{}}\", items.len()))); }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Data::UnitStruct => format!(
            "match v {{ ::serde::Value::Null => Ok({name}), other => Err(::serde::Error::expected(\"null ({name})\", other)) }}"
        ),
        Data::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => return Ok({name}::{vn}),", vn = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("\"{vn}\" => return Ok({name}::{vn}),")
                        }
                        VariantKind::Tuple(1) => format!(
                            "\"{vn}\" => return Ok({name}::{vn}(<_ as ::serde::Deserialize>::from_value(inner).map_err(|e| e.context(\"{name}::{vn}\"))?)),"
                        ),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "<_ as ::serde::Deserialize>::from_value(&items[{i}]).map_err(|e| e.context(\"{name}::{vn}.{i}\"))?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let items = inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array ({name}::{vn})\", inner))?;\n\
                                     if items.len() != {n} {{ return Err(::serde::Error::msg(format!(\"expected {n} elements for {name}::{vn}, found {{}}\", items.len()))); }}\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| named_init(f, &format!("{name}::{vn}"), "inner"))
                                .collect();
                            format!(
                                "\"{vn}\" => return Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "if let Some(s) = v.as_str() {{\n\
                     match s {{ {unit_arms} _ => return Err(::serde::Error::msg(format!(\"unknown variant {{s:?}} of {name}\"))) }}\n\
                 }}\n\
                 if let Some(entries) = v.as_object() {{\n\
                     if entries.len() == 1 {{\n\
                         let tag = entries[0].0.as_str();\n\
                         let inner = &entries[0].1;\n\
                         let _ = inner;\n\
                         match tag {{ {tagged_arms} _ => return Err(::serde::Error::msg(format!(\"unknown variant {{tag:?}} of {name}\"))) }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::Error::expected(\"variant of {name}\", v))",
                unit_arms = unit_arms.join(" "),
                tagged_arms = tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
