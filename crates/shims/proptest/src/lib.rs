//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! `proptest!` with an optional `#![proptest_config(...)]` header, range
//! and tuple strategies, `Just`, `any::<T>()`, `prop_oneof!`,
//! `Strategy::prop_map`, `proptest::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with its inputs printed; the
//!   inputs are reproducible (the RNG seed derives from the test name), but
//!   they are not minimized.
//! * **Fixed case count** (default [`ProptestConfig::DEFAULT_CASES`]) —
//!   tune per-test with `ProptestConfig::with_cases`.

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

/// Re-exports everything a `use proptest::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Strategies over collections.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng, VecStrategy};

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------- test RNG

/// Deterministic RNG for case generation (splitmix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed (typically a hash of the test name).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping; bias is negligible for
        // test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Hashes a test name into an RNG seed (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------- strategy

/// A generator of test-case values.
pub trait Strategy {
    /// The value type generated.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.sample(rng)))
    }
}

/// A `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($( ($($name:ident : $idx:tt),+) ),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.sample(rng), )+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// Collection length specification for [`collection::vec`].
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            return self.lo;
        }
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// The strategy produced by [`collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

// ------------------------------------------------------------------ runner

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Default number of cases per property (kept modest: this shim does
    /// not shrink, so long runs only help coverage, not debuggability).
    pub const DEFAULT_CASES: u32 = 64;

    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: Self::DEFAULT_CASES,
        }
    }
}

/// A recoverable test-case failure (produced by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (lhs, rhs) => {
                $crate::prop_assert!(
                    *lhs == *rhs,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a),
                    stringify!($b),
                    lhs,
                    rhs
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (lhs, rhs) => {
                $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (lhs, rhs) => {
                $crate::prop_assert!(
                    *lhs != *rhs,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($a),
                    stringify!($b),
                    lhs
                );
            }
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$( $crate::Strategy::boxed($strategy) ),+])
    };
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for case in 0..cfg.cases {
                // `$strategy` expressions are re-evaluated per case; all
                // strategies here are cheap, stateless constructors.
                let ($($arg,)+) =
                    ($( $crate::Strategy::sample(&$strategy, &mut rng), )+);
                // Render inputs up front: the body may move them.
                let inputs = format!("{:#?}", ($(&$arg,)+));
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs: {}",
                        stringify!($name),
                        case + 1,
                        cfg.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
}
