//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning API, backed by `std::sync`. A poisoned std lock (a thread
//! panicked while holding it) is entered anyway, matching `parking_lot`'s
//! semantics.

use std::sync;

/// A mutual-exclusion lock; `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock and returns its value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A readers-writer lock; `read()`/`write()` never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, blocking.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, blocking.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock and returns its value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}
