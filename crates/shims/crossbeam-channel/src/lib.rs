//! Offline stand-in for `crossbeam-channel`, backed by `std::sync::mpsc`.
//!
//! Since Rust 1.72 `std`'s mpsc sender is `Sync`, which covers the
//! multi-producer sharing pattern the runtime uses. Only the API surface
//! the workspace needs is provided: `unbounded`, `Sender::send`,
//! `Receiver::{recv, try_recv, recv_timeout}`.

use std::sync::mpsc;
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// The sending half of an unbounded channel.
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Sends a message; errors if all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout)
    }

    /// Drains currently queued messages without blocking.
    pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
        self.0.try_iter()
    }
}

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
