//! Offline stand-in for `crossbeam-channel`, backed by `std::sync::mpsc`.
//!
//! Since Rust 1.72 `std`'s mpsc sender is `Sync`, which covers the
//! multi-producer sharing pattern the runtime uses. Only the API surface
//! the workspace needs is provided: `unbounded`, `Sender::send`,
//! `Receiver::{recv, try_recv, recv_timeout, len}`.
//!
//! `len()` (real crossbeam has it too) is backed by a shared counter the
//! senders bump and the receiver decrements — approximate under races,
//! exact whenever all sends happen-before the read, which is all the
//! workspace needs (queue-depth gauges).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    tx: mpsc::Sender<T>,
    depth: Arc<AtomicUsize>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            tx: self.tx.clone(),
            depth: Arc::clone(&self.depth),
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message; errors if all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.tx.send(value)?;
        self.depth.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    rx: mpsc::Receiver<T>,
    depth: Arc<AtomicUsize>,
}

impl<T> Receiver<T> {
    fn took(&self) {
        // Saturating decrement: send() bumps after the enqueue, so a racing
        // reader may observe the message before the counter.
        let _ = self
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1));
    }

    /// Blocks until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let v = self.rx.recv()?;
        self.took();
        Ok(v)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let v = self.rx.try_recv()?;
        self.took();
        Ok(v)
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let v = self.rx.recv_timeout(timeout)?;
        self.took();
        Ok(v)
    }

    /// Messages currently queued (approximate under concurrent sends).
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Whether the queue is currently empty (see [`Receiver::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains currently queued messages without blocking. Bypasses the
    /// depth counter — callers that also use `len()` should prefer
    /// repeated `try_recv` (the workspace only ever uses one or the
    /// other on a given channel).
    pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
        self.rx.try_iter()
    }
}

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    let depth = Arc::new(AtomicUsize::new(0));
    (
        Sender {
            tx,
            depth: Arc::clone(&depth),
        },
        Receiver { rx, depth },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
