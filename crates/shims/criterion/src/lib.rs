//! Offline stand-in for `criterion`.
//!
//! Implements the API surface this workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::bench_function`, `Bencher::iter` — with a simple
//! warmup-then-measure wall-clock loop instead of criterion's statistical
//! machinery.
//!
//! Results print as `group/name  time: [<mean> ns/iter]` lines. If the
//! `ARM_BENCH_JSON` environment variable names a file, every measured
//! benchmark is also appended to it as a JSON array of
//! `{"id", "mean_ns", "iters"}` objects (the file is rewritten whole on
//! each binary's exit, merging earlier entries, so a multi-binary
//! `cargo bench` run accumulates all results).
//!
//! Setting `ARM_BENCH_QUICK` (to anything but `0` or the empty string)
//! shrinks the warmup/measure windows ~10×, for smoke runs in CI where
//! relative ordering matters more than tight confidence intervals.

use std::hint;
use std::time::{Duration, Instant};

pub use hint::black_box;

/// True when `ARM_BENCH_QUICK` asks for short smoke-quality timings.
fn quick_mode() -> bool {
    std::env::var("ARM_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn warmup_window() -> Duration {
    if quick_mode() {
        Duration::from_millis(10)
    } else {
        Duration::from_millis(120)
    }
}

fn measure_window() -> Duration {
    if quick_mode() {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(400)
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured (after warmup).
    pub iters: u64,
}

/// The benchmark harness handle passed to bench functions.
pub struct Criterion {
    filter: Option<String>,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` plus any user filter strings; the first
        // non-flag argument is treated as a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        self.run_one(name.as_ref().to_string(), f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        println!(
            "{id:<50} time: [{} /iter] ({} iters)",
            format_ns(bencher.mean_ns),
            bencher.iters
        );
        self.results.push(Measurement {
            id,
            mean_ns: bencher.mean_ns,
            iters: bencher.iters,
        });
    }

    /// Measurements recorded so far, in execution order. Lets a bench
    /// binary assert relations between its own results (e.g. an overhead
    /// bound) after running them.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints the summary and writes the optional JSON export. Called by
    /// `criterion_main!` when the binary finishes.
    pub fn finish(&self) {
        let Ok(path) = std::env::var("ARM_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        // Merge with any entries written by earlier bench binaries in the
        // same `cargo bench` invocation.
        let mut entries: Vec<(String, f64, u64)> = std::fs::read_to_string(&path)
            .ok()
            .map(|text| parse_entries(&text))
            .unwrap_or_default();
        for m in &self.results {
            entries.retain(|(id, _, _)| id != &m.id);
            entries.push((m.id.clone(), m.mean_ns, m.iters));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("[\n");
        for (i, (id, mean_ns, iters)) in entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"id\": {id:?}, \"mean_ns\": {mean_ns:.1}, \"iters\": {iters}}}"
            ));
        }
        out.push_str("\n]\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
}

/// Minimal extractor for the flat JSON array [`Criterion::finish`] writes.
fn parse_entries(text: &str) -> Vec<(String, f64, u64)> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix("{\"id\": \"") else {
            continue;
        };
        let Some((id, rest)) = rest.split_once("\", \"mean_ns\": ") else {
            continue;
        };
        let Some((mean, rest)) = rest.split_once(", \"iters\": ") else {
            continue;
        };
        let iters = rest.trim_end_matches('}');
        if let (Ok(mean_ns), Ok(iters)) = (mean.parse(), iters.parse()) {
            entries.push((id.to_string(), mean_ns, iters));
        }
    }
    entries
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name.as_ref());
        self.criterion.run_one(id, f);
        self
    }

    /// Sets the number of samples (kept for API compatibility; the shim's
    /// fixed-duration calibration ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call
/// [`iter`](Bencher::iter) with the code under test.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `f`: warms up for ~120 ms, then measures for ~400 ms and
    /// records the mean wall-clock time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup, also estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < warmup_window() {
            hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        // Measure in one timed run of a precomputed iteration count to
        // amortize clock reads.
        let target_iters = ((measure_window().as_nanos() as f64 / per_iter.max(1.0)) as u64).max(1);
        let start = Instant::now();
        for _ in 0..target_iters {
            hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / target_iters as f64;
        self.iters = target_iters;
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.finish();
        }
    };
}
