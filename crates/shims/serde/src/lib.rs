//! Offline stand-in for `serde`.
//!
//! The real `serde` models serialization through visitor traits; this shim
//! collapses the data model to a JSON-shaped [`Value`] tree, which is all
//! the consuming workspace needs (every serialized type here ultimately
//! flows through `serde_json`). The public names (`Serialize`,
//! `Deserialize`, the `derive` feature) match `serde` so consuming code is
//! source-compatible with the real crate.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model every serializable type maps to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative numbers land here).
    Int(i64),
    /// Unsigned integer (non-negative numbers land here).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A `Value::Null` with a `'static` address, for missing-field lookups.
pub static NULL: Value = Value::Null;

impl Value {
    /// The object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64`, if an exact integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// A short name for the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up an object field; missing fields read as `null` so that
    /// optional fields deserialize to `None`.
    pub fn field<'v>(&'v self, name: &str) -> &'v Value {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// "expected X, found Y" helper.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }

    /// Adds location context (outermost first).
    pub fn context(self, ctx: &str) -> Self {
        Error(format!("{ctx}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| Error::msg(format!(
                    "integer {u} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::msg(format!(
                    "integer {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(u) => Value::UInt(u),
            // Out-of-range values fall back to a decimal string; JSON
            // numbers past 2^64 are not representable in this data model.
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if let Some(u) = v.as_u64() {
            return Ok(u as u128);
        }
        if let Value::Str(s) = v {
            if let Ok(u) = s.parse::<u128>() {
                return Ok(u);
            }
        }
        Err(Error::expected("unsigned integer", v))
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::expected("number", v))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn to_value(&self) -> Value {
        Value::Str(self.as_ref().to_owned())
    }
}

impl Deserialize for std::borrow::Cow<'static, str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(std::borrow::Cow::Owned)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-character string", other)),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_value(item).map_err(|e| e.context(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_tuple {
    ($( ($($name:ident : $idx:tt),+) ),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected {expected}-tuple, found array of {}", items.len()
                    )));
                }
                Ok(($( $name::from_value(&items[$idx])
                    .map_err(|e| e.context(&format!("[{}]", $idx)))?, )+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// Stringifies a serialized map key, mirroring `serde_json`'s handling of
/// integer map keys.
fn key_to_string(v: Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s),
        Value::Int(i) => Ok(i.to_string()),
        Value::UInt(u) => Ok(u.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::msg(format!(
            "map key must serialize to a string or integer, got {}",
            other.kind()
        ))),
    }
}

/// Re-types an object key for deserialization: integer-looking keys become
/// integers again so integer-keyed maps round-trip.
fn key_from_string(s: &str) -> Value {
    if let Ok(u) = s.parse::<u64>() {
        return Value::UInt(u);
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    match s {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::Str(s.to_owned()),
    }
}

macro_rules! impl_map {
    ($map:ident, $($bound:tt)+) => {
        impl<K: Serialize, V: Serialize> Serialize for $map<K, V> {
            fn to_value(&self) -> Value {
                let mut entries: Vec<(String, Value)> = self
                    .iter()
                    .map(|(k, v)| {
                        let key = key_to_string(k.to_value())
                            .expect("unsupported map key type");
                        (key, v.to_value())
                    })
                    .collect();
                // Hash maps have no deterministic order; sort for stable output.
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                Value::Object(entries)
            }
        }
        impl<K: Deserialize + $($bound)+, V: Deserialize> Deserialize for $map<K, V> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let entries = v.as_object().ok_or_else(|| Error::expected("object", v))?;
                entries
                    .iter()
                    .map(|(k, item)| {
                        let key = K::from_value(&key_from_string(k))
                            .map_err(|e| e.context(&format!("key {k:?}")))?;
                        let val = V::from_value(item)
                            .map_err(|e| e.context(&format!("[{k:?}]")))?;
                        Ok((key, val))
                    })
                    .collect()
            }
        }
    };
}
impl_map!(BTreeMap, Ord);
impl_map!(HashMap, std::hash::Hash + Eq);

macro_rules! impl_set {
    ($set:ident, $($bound:tt)+) => {
        impl<T: Serialize> Serialize for $set<T> {
            fn to_value(&self) -> Value {
                let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
                items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                Value::Array(items)
            }
        }
        impl<T: Deserialize + $($bound)+> Deserialize for $set<T> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                items.iter().map(T::from_value).collect()
            }
        }
    };
}
impl_set!(BTreeSet, Ord);
impl_set!(HashSet, std::hash::Hash + Eq);

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
    }

    #[test]
    fn option_and_missing_fields() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(obj.field("missing"), &Value::Null);
        assert_eq!(obj.field("a"), &Value::UInt(1));
    }

    #[test]
    fn integer_keyed_map_round_trips() {
        let mut m = BTreeMap::new();
        m.insert(17u64, "x".to_string());
        m.insert(3u64, "y".to_string());
        let v = m.to_value();
        let back = BTreeMap::<u64, String>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u64, 2.5f64, "z".to_string());
        let back = <(u64, f64, String)>::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }
}
