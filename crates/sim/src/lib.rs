//! Simulation harness: whole overlays of middleware state machines under
//! deterministic discrete-event simulation.
//!
//! This is the substrate substituting for the paper's wide-area testbed
//! (DESIGN.md §2, substitution 2). A [`Simulation`] wires together:
//!
//! * the topology and latency models of `arm-net` (geographic clusters →
//!   "topological proximity" domains),
//! * per-peer [`PeerNode`](arm_core::PeerNode) state machines from
//!   `arm-core`,
//! * synthetic inventories and request traces from `arm-workload`,
//! * optional churn traces (join/leave/crash),
//!
//! and runs them to a horizon, producing a [`SimReport`] with task
//! outcomes, latency distributions, fairness-over-time samples, message
//! accounting and adaptation telemetry. Everything is deterministic given
//! [`ScenarioConfig::seed`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod harness;
mod parallel;
mod report;
mod scenario;
pub(crate) mod sync;

pub use harness::Simulation;
pub use parallel::{allocate_batch, run_parallel, AllocJob};
pub use report::{OutcomeCounts, SimReport};
pub use scenario::ScenarioConfig;
