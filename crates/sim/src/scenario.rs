//! Scenario configuration: everything a run needs, in one struct.

use arm_core::ProtocolConfig;
use arm_net::churn::ChurnParams;
use arm_net::{Heterogeneity, LatencyModel};
use arm_util::{SimDuration, SimTime};
use arm_workload::WorkloadConfig;
use serde::{Deserialize, Serialize};

/// Full description of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Number of geographic clusters (→ initial domains).
    pub clusters: usize,
    /// Peers per cluster (including the cluster's founding RM).
    pub peers_per_cluster: usize,
    /// Geographic scatter within a cluster (see
    /// [`Topology::clustered`](arm_net::Topology::clustered)).
    pub spread: f64,
    /// Capacity/bandwidth heterogeneity.
    pub heterogeneity: Heterogeneity,
    /// Pairwise latency model.
    pub latency: LatencyModel,
    /// Multiplicative latency jitter (0 = none).
    pub jitter: f64,
    /// Message loss probability.
    pub loss: f64,
    /// Add store-and-forward transmission delay (message size over the
    /// bottleneck access link) on top of propagation latency. Off by
    /// default so recorded experiment tables stay latency-dominated.
    pub transmission_delay: bool,
    /// Middleware protocol parameters.
    pub protocol: ProtocolConfig,
    /// Workload parameters (the workload horizon is clamped to
    /// `horizon − warmup` at build time).
    pub workload: WorkloadConfig,
    /// Churn parameters; `None` disables churn.
    pub churn: Option<ChurnParams>,
    /// Delay between consecutive peer joins at start-up.
    pub join_stagger: SimDuration,
    /// Time reserved for overlay formation before the first task arrives.
    pub warmup: SimDuration,
    /// Total virtual run length.
    pub horizon: SimTime,
    /// Period of global metric sampling (fairness, utilization).
    pub sample_period: SimDuration,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            clusters: 2,
            peers_per_cluster: 16,
            spread: 0.05,
            heterogeneity: Heterogeneity::default(),
            latency: LatencyModel::default(),
            jitter: 0.1,
            loss: 0.0,
            transmission_delay: false,
            protocol: ProtocolConfig::default(),
            workload: WorkloadConfig::default(),
            churn: None,
            join_stagger: SimDuration::from_millis(50),
            warmup: SimDuration::from_secs(5),
            horizon: SimTime::from_secs(300),
            sample_period: SimDuration::from_secs(1),
        }
    }
}

impl ScenarioConfig {
    /// Total number of peers.
    pub fn num_peers(&self) -> usize {
        self.clusters * self.peers_per_cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_consistent() {
        let c = ScenarioConfig::default();
        assert_eq!(c.num_peers(), 32);
        assert!(c.horizon > SimTime::ZERO + c.warmup);
    }
}
