//! Lock type used by the simulation harness and parallel sweeps.
//!
//! Normal builds use `parking_lot`. With the `lock-witness` feature the
//! locks become `arm-util`'s instrumented witness wrappers so the heavy
//! churn workloads also exercise the runtime lock-order witness. Names
//! identify lock classes, not instances — every parallel-runner slot is
//! `"parallel.slot"`.

#[cfg(not(feature = "lock-witness"))]
mod plain {
    pub type Lock<T> = parking_lot::Mutex<T>;

    /// A new lock; the name is only used by the witness build.
    pub fn mutex<T>(_name: &'static str, value: T) -> Lock<T> {
        parking_lot::Mutex::new(value)
    }
}

#[cfg(feature = "lock-witness")]
mod plain {
    pub type Lock<T> = arm_util::lockwitness::WitnessMutex<T>;

    /// A new witness lock recording acquisitions under `name`.
    pub fn mutex<T>(name: &'static str, value: T) -> Lock<T> {
        arm_util::lockwitness::WitnessMutex::new(name, value)
    }
}

pub(crate) use plain::{mutex, Lock};
