//! The simulation driver.

use crate::report::SimReport;
use crate::scenario::ScenarioConfig;
use arm_core::{Action, Event, HandleProfiler, PeerNode, Role};
use arm_des::Simulator;
use arm_model::task::TaskOutcome;
use arm_net::churn::{ChurnEvent, ChurnKind, ChurnTrace};
use arm_net::{NetworkModel, Topology};
use arm_proto::TraceCtx;
use arm_telemetry::{
    health::pulse_metrics, FixedHistogram, HealthThresholds, Labels, Pulse, Recorder, TraceKind,
};
use arm_util::{DetRng, NodeId, SimTime};
use arm_workload::{generate_inventories, generate_tasks, Inventory};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Per-node persisted WAL byte streams captured by
/// [`Simulation::enable_store`] (the DES twin of `--state-dir`).
pub type StoreCapture = Arc<crate::sync::Lock<BTreeMap<NodeId, Vec<u8>>>>;

/// Internal DES payload.
enum SimEvent {
    Node(NodeId, Event),
    Churn(ChurnEvent),
    Sample,
}

/// A fully wired simulation, ready to [`run`](Simulation::run).
pub struct Simulation {
    cfg: ScenarioConfig,
    topo: Topology,
    net: NetworkModel,
    net_rng: DetRng,
    sim: Simulator<SimEvent>,
    nodes: BTreeMap<NodeId, PeerNode>,
    alive: BTreeSet<NodeId>,
    inventories: BTreeMap<NodeId, Inventory>,
    cluster_of: BTreeMap<NodeId, usize>,
    leaders: Vec<NodeId>,
    rejoin_counts: BTreeMap<NodeId, u64>,
    report: SimReport,
    recorder: Recorder,
    profiler: HandleProfiler,
    /// Retained time-series/health plane; sampled at every [`SimEvent::Sample`]
    /// tick when enabled via [`enable_pulse`](Self::enable_pulse).
    pulse: Option<Pulse>,
    /// Peer-utilization samples batched outside the registry (one
    /// observation per alive peer per sample tick); merged into the
    /// recorder once, at finalize.
    util_hist: FixedHistogram,
    /// In-memory persistence sink: every `Action::Persist` intent is
    /// WAL-encoded (same codec as `--state-dir`) into the node's byte
    /// stream. `None` = persistence disabled (intents dropped).
    stores: Option<StoreCapture>,
}

impl Simulation {
    /// Builds topology, inventories, task trace and churn from the
    /// scenario, and schedules everything into the event list.
    pub fn new(cfg: ScenarioConfig) -> Self {
        let root = DetRng::new(cfg.seed);
        let mut topo_rng = root.stream("topology");
        let topo = Topology::clustered(
            cfg.clusters,
            cfg.peers_per_cluster,
            cfg.spread,
            cfg.heterogeneity,
            &mut topo_rng,
            0,
        );
        let mut net = NetworkModel::new(cfg.latency, cfg.jitter, cfg.loss, &topo);
        if cfg.transmission_delay {
            net = net.with_transmission_delay();
        }
        let peers: Vec<NodeId> = topo.peers.iter().map(|p| p.id).collect();
        let leaders: Vec<NodeId> = (0..cfg.clusters)
            .map(|c| peers[c * cfg.peers_per_cluster])
            .collect();
        let cluster_of: BTreeMap<NodeId, usize> =
            topo.peers.iter().map(|p| (p.id, p.cluster)).collect();

        // Workload: inventories over all peers; tasks start after warmup.
        let mut wl = cfg.workload.clone();
        wl.horizon = SimTime::from_micros(
            cfg.horizon
                .as_micros()
                .saturating_sub(cfg.warmup.as_micros()),
        );
        let inventories = generate_inventories(&peers, &wl, &root.stream("inventory"));
        let tasks = generate_tasks(&peers, &inventories, &wl, &root.stream("tasks"));

        let mut sim: Simulator<SimEvent> = Simulator::with_capacity(4 * tasks.len() + 1024);

        // Start-up: each cluster leader founds its own domain at t≈0 (the
        // paper's premise that peers group into geographic domains); the
        // rest join their cluster leader, staggered.
        for &leader in &leaders {
            sim.schedule_at(
                SimTime::ZERO,
                SimEvent::Node(leader, Event::Start { bootstrap: None }),
            );
        }
        // Out-of-band RM discovery bootstrap (documented substitution):
        // leaders learn of each other via stub gossip digests, as if a
        // rendezvous service had introduced them. Real summaries replace
        // the stubs at the first gossip round.
        let mut intro_time = SimTime::from_millis(10);
        for &a in &leaders {
            for &b in &leaders {
                if a != b {
                    let stub = arm_proto::DomainSummary {
                        domain: arm_util::DomainId::new(b.raw()),
                        rm: b,
                        objects: arm_util::BloomFilter::new(64, 1),
                        services: arm_util::BloomFilter::new(64, 1),
                        mean_utilization: 0.0,
                        version: 0,
                    };
                    sim.schedule_at(
                        intro_time,
                        SimEvent::Node(
                            a,
                            Event::msg(
                                b,
                                arm_proto::Message::GossipDigest {
                                    summaries: vec![stub],
                                },
                            ),
                        ),
                    );
                }
            }
            intro_time += arm_util::SimDuration::from_millis(1);
        }
        let mut t = SimTime::from_millis(100);
        for (i, &p) in peers.iter().enumerate() {
            if leaders.contains(&p) {
                continue;
            }
            let leader = leaders[i / cfg.peers_per_cluster];
            sim.schedule_at(
                t,
                SimEvent::Node(
                    p,
                    Event::Start {
                        bootstrap: Some(leader),
                    },
                ),
            );
            t += cfg.join_stagger;
        }

        // Task arrivals, shifted past warmup.
        let mut submitted = 0;
        for arrival in tasks {
            sim.schedule_at(
                arrival.at + cfg.warmup,
                SimEvent::Node(arrival.requester, Event::SubmitTask(arrival.task)),
            );
            submitted += 1;
        }

        // Churn trace.
        if let Some(params) = cfg.churn {
            let trace = ChurnTrace::generate(&topo, params, cfg.horizon, &mut root.stream("churn"));
            for ev in trace.events() {
                // Don't churn before the overlay has formed.
                let at = if ev.at < SimTime::ZERO + cfg.warmup {
                    SimTime::ZERO + cfg.warmup
                } else {
                    ev.at
                };
                sim.schedule_at(at, SimEvent::Churn(*ev));
            }
        }

        // Metric sampling.
        let mut s = SimTime::ZERO + cfg.sample_period;
        while s < cfg.horizon {
            sim.schedule_at(s, SimEvent::Sample);
            s += cfg.sample_period;
        }

        // Build the nodes.
        let mut nodes = BTreeMap::new();
        for spec in &topo.peers {
            let inv = &inventories[&spec.id];
            nodes.insert(
                spec.id,
                PeerNode::new(
                    spec.id,
                    spec.capacity,
                    spec.bandwidth_kbps,
                    inv.objects.clone(),
                    inv.services.clone(),
                    cfg.protocol.clone(),
                    cfg.seed,
                    SimTime::ZERO,
                ),
            );
        }

        let report = SimReport {
            submitted,
            ..SimReport::default()
        };

        Self {
            net_rng: root.stream("net"),
            cfg,
            topo,
            net,
            sim,
            alive: nodes.keys().copied().collect(),
            nodes,
            inventories,
            cluster_of,
            leaders,
            rejoin_counts: BTreeMap::new(),
            report,
            recorder: Recorder::disabled(),
            profiler: HandleProfiler::disabled(),
            pulse: None,
            util_hist: FixedHistogram::new(arm_profiler::UTILIZATION_BOUNDS),
            stores: None,
        }
    }

    /// The generated topology (for inspection).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Switches on telemetry for this run: every node emits structured
    /// trace events, the harness drives task-lifecycle spans and kernel
    /// metrics, and the final report carries a metrics snapshot. The trace
    /// ring keeps the most recent `trace_capacity` events in memory.
    pub fn enable_telemetry(&mut self, trace_capacity: usize) {
        self.recorder = Recorder::enabled(trace_capacity);
        // Stride-sampled: two clock reads per dispatch would otherwise be
        // a measurable share of the tracing overhead budget (the DES
        // drains hundreds of thousands of events per wall second).
        self.profiler = HandleProfiler::sampled(32);
        for node in self.nodes.values_mut() {
            node.set_tracing(true);
        }
    }

    /// Switches on the retained time-series and health plane: every sample
    /// tick also snapshots the metrics registry into bounded per-metric
    /// series and evaluates the standard health rules over them. Implies
    /// [`enable_telemetry`](Self::enable_telemetry) (the series sampler
    /// reads the recorder's registry). The final report then carries the
    /// full retained window in [`SimReport::series`] for convergence
    /// curves.
    pub fn enable_pulse(&mut self, capacity: usize) {
        if !self.recorder.is_enabled() {
            self.enable_telemetry(1 << 14);
        }
        self.pulse = Some(Pulse::new(capacity, &HealthThresholds::default()));
    }

    /// Switches on deterministic in-memory persistence: every
    /// [`Action::Persist`] intent is framed through the real arm-store
    /// codec into a per-node byte stream (the DES twin of `--state-dir`,
    /// without touching the filesystem). Returns the capture handle —
    /// read it after [`run`](Self::run); identically seeded runs must
    /// produce bit-identical streams.
    pub fn enable_store(&mut self) -> StoreCapture {
        let capture: StoreCapture = Arc::new(crate::sync::mutex("harness.stores", BTreeMap::new()));
        self.stores = Some(Arc::clone(&capture));
        capture
    }

    /// Runs to the horizon and returns the report.
    pub fn run(self) -> SimReport {
        self.run_traced().0
    }

    /// Runs to the horizon, returning the report plus the telemetry
    /// recorder (trace ring, metrics registry). The recorder is empty
    /// unless [`enable_telemetry`](Self::enable_telemetry) was called.
    pub fn run_traced(mut self) -> (SimReport, Recorder) {
        // arm-lint: allow(determinism) -- wall-clock is only reported as the
        // run's elapsed_ms; nothing in the simulation reads it.
        let started = std::time::Instant::now();
        let horizon = self.cfg.horizon;
        while let Some(scheduled) = self.sim.step_until(horizon) {
            let now = scheduled.time;
            match scheduled.event {
                SimEvent::Node(target, event) => self.dispatch(now, target, event),
                SimEvent::Churn(ev) => self.apply_churn(now, ev),
                SimEvent::Sample => self.sample(now),
            }
        }
        self.finalize(started)
    }

    fn dispatch(&mut self, now: SimTime, target: NodeId, event: Event) {
        if !self.alive.contains(&target) {
            return;
        }
        let Some(node) = self.nodes.get_mut(&target) else {
            return;
        };
        if self.recorder.is_enabled() {
            if let Event::SubmitTask(task) = &event {
                self.recorder.task_submitted(task.id, now);
            }
        }
        let msg_kind = match &event {
            Event::Msg { msg, .. } => Some(msg.kind()),
            _ => None,
        };
        let handle_started = if msg_kind.is_some() && self.profiler.should_sample() {
            // arm-lint: allow(determinism) -- wall-clock only feeds the
            // handler profiler's exported histograms; nothing the
            // simulation schedules or decides ever reads it (sampling is
            // a deterministic counter, not time-based).
            Some(std::time::Instant::now())
        } else {
            None
        };
        let actions = node.on_event(now, event);
        if let (Some(kind), Some(started)) = (msg_kind, handle_started) {
            self.profiler.record(kind, started.elapsed().as_secs_f64());
        }
        // All sends of one handling batch share the node's outbound trace
        // context, so causality survives the simulated network hop.
        let ctx = node.out_ctx();
        for action in actions {
            self.apply_action(now, target, action, ctx);
        }
    }

    fn apply_action(&mut self, now: SimTime, from: NodeId, action: Action, ctx: TraceCtx) {
        match action {
            Action::Send { to, msg } => {
                if msg.kind() == "task_redirect" {
                    self.report.redirects += 1;
                }
                match self
                    .net
                    .sample_sized(from, to, msg.size_bytes(), &mut self.net_rng)
                {
                    Some(delay) => {
                        let entry = self
                            .report
                            .messages
                            .entry(msg.kind().to_string())
                            .or_insert((0, 0));
                        entry.0 += 1;
                        entry.1 += msg.size_bytes() as u64;
                        self.sim.schedule_at(
                            now + delay,
                            SimEvent::Node(to, Event::Msg { from, msg, ctx }),
                        );
                    }
                    None => {
                        self.report.messages_lost += 1;
                    }
                }
            }
            Action::SetTimer { kind, after } => {
                self.sim
                    .schedule_at(now + after, SimEvent::Node(from, Event::Timer(kind)));
            }
            Action::Outcome {
                task,
                outcome,
                response,
                at,
            } => {
                match outcome {
                    TaskOutcome::CompletedOnTime => self.report.outcomes.on_time += 1,
                    TaskOutcome::CompletedLate => self.report.outcomes.late += 1,
                    TaskOutcome::Rejected => self.report.outcomes.rejected += 1,
                    TaskOutcome::Failed => self.report.outcomes.failed += 1,
                }
                if let Some(r) = response {
                    if outcome.is_completed() {
                        self.report.response_time.observe(r.as_secs_f64());
                    }
                }
                if self.recorder.is_enabled() {
                    let label = match outcome {
                        TaskOutcome::CompletedOnTime => "on_time",
                        TaskOutcome::CompletedLate => "late",
                        TaskOutcome::Rejected => "rejected",
                        TaskOutcome::Failed => "failed",
                    };
                    self.recorder.task_finished(task, label, at);
                }
            }
            Action::ReplyReceived { at, .. } => {
                // Reply latency is measured from submission; the task's
                // submitted_at is embedded, but the reply only carries the
                // arrival time. Approximate with response-time tracking on
                // the RM side; here we record the raw arrival for rate
                // accounting.
                let _ = at;
            }
            Action::Promoted { .. } => self.report.promotions += 1,
            Action::SessionRepaired { ok, .. } => {
                if ok {
                    self.report.repairs_ok += 1;
                } else {
                    self.report.repairs_failed += 1;
                }
            }
            Action::SessionReassigned { .. } => self.report.reassignments += 1,
            Action::Trace(ev) => {
                if let TraceKind::TaskPhase { task, phase } = ev.kind {
                    self.recorder.task_phase(task, phase, ev.at);
                }
                self.recorder.record(ev);
            }
            Action::Persist(intent) => {
                let Some(stores) = &self.stores else { return };
                // Frame through the real codec so the captured stream is
                // exactly what a `--state-dir` WAL would hold; encoding an
                // intent cannot fail, but a failure here must only lose
                // the record, never the run.
                let Ok(json) = serde_json::to_string(&intent) else {
                    return;
                };
                let Ok(record) =
                    arm_store::codec::encode_record(arm_store::RecordKind::Intent, json.as_bytes())
                else {
                    return;
                };
                let mut streams = stores.lock();
                streams.entry(from).or_default().extend_from_slice(&record);
            }
        }
    }

    fn apply_churn(&mut self, now: SimTime, ev: ChurnEvent) {
        match ev.kind {
            ChurnKind::Crash => {
                self.alive.remove(&ev.node);
            }
            ChurnKind::Leave => {
                self.dispatch(now, ev.node, Event::Shutdown { graceful: true });
                self.alive.remove(&ev.node);
            }
            ChurnKind::Join => {
                if self.alive.contains(&ev.node) {
                    return;
                }
                // Fresh state machine: crashes lose state, as in reality.
                let spec = self
                    .topo
                    .get(ev.node)
                    .expect("churned node is in the topology")
                    .clone();
                let inv = &self.inventories[&ev.node];
                let rejoins = self.rejoin_counts.entry(ev.node).or_insert(0);
                *rejoins += 1;
                let mut node = PeerNode::new(
                    ev.node,
                    spec.capacity,
                    spec.bandwidth_kbps,
                    inv.objects.clone(),
                    inv.services.clone(),
                    self.cfg.protocol.clone(),
                    self.cfg.seed ^ (*rejoins << 32),
                    now,
                );
                node.set_tracing(self.recorder.is_enabled());
                self.nodes.insert(ev.node, node);
                self.alive.insert(ev.node);
                let bootstrap = self.pick_bootstrap(ev.node);
                self.sim
                    .schedule_at(now, SimEvent::Node(ev.node, Event::Start { bootstrap }));
            }
        }
    }

    /// A rejoining peer contacts its cluster leader if alive, else any
    /// alive peer of its cluster, else any alive peer.
    fn pick_bootstrap(&self, node: NodeId) -> Option<NodeId> {
        let cluster = self.cluster_of[&node];
        let leader = self.leaders[cluster];
        if leader != node && self.alive.contains(&leader) {
            return Some(leader);
        }
        self.topo
            .peers
            .iter()
            .filter(|p| p.cluster == cluster && p.id != node && self.alive.contains(&p.id))
            .map(|p| p.id)
            .next()
            .or_else(|| self.alive.iter().find(|p| **p != node).copied())
    }

    fn sample(&mut self, now: SimTime) {
        self.check_gossip_convergence(now);
        #[cfg(feature = "check-invariants")]
        self.check_invariants(now);
        if self.recorder.is_enabled() {
            self.recorder
                .set_gauge("des_queue_depth", Labels::NONE, self.sim.pending() as f64);
            self.recorder
                .set_gauge("peers_alive", Labels::NONE, self.alive.len() as f64);
            // Per-peer series are batched: utilization into a local
            // histogram here, load gauges (last-value-wins anyway) once at
            // finalize. Touching the registry per peer per tick costs a
            // map lookup each and dominates tracing overhead.
            for id in &self.alive {
                self.util_hist
                    .observe(self.nodes[id].profiler().utilization());
            }
        }
        if self.pulse.is_some() {
            self.pulse_tick(now);
        }
        let mut loads = Vec::with_capacity(self.alive.len());
        let mut utils = Vec::with_capacity(self.alive.len());
        for id in &self.alive {
            let node = &self.nodes[id];
            if matches!(node.role(), Role::Member | Role::Rm) {
                loads.push(node.load());
                utils.push(node.load() / node.profiler().capacity());
            }
        }
        if !loads.is_empty() {
            self.report
                .fairness_series
                .push((now.as_secs_f64(), arm_util::fairness_index(&loads)));
            let mu = utils.iter().sum::<f64>() / utils.len() as f64;
            self.report.utilization_series.push((now.as_secs_f64(), mu));
        }
    }

    /// One pulse tick: publishes fleet-level health gauges (worst case
    /// across alive peers, so a single stalled domain is visible), then
    /// samples every registered metric into the retained series and
    /// evaluates the health rules. Everything here derives from sim time
    /// and node state — two identically seeded runs produce bit-identical
    /// series.
    fn pulse_tick(&mut self, now: SimTime) {
        let mut has_rm = 0.0;
        let mut rm_silence = 0.0f64;
        let mut gossip_age = 0.0f64;
        for id in &self.alive {
            let node = &self.nodes[id];
            match node.role() {
                Role::Rm => {
                    has_rm = 1.0;
                    if let Some(heard) = node.last_gossip_heard() {
                        gossip_age = gossip_age.max(now.saturating_since(heard).as_secs_f64());
                    }
                }
                Role::Member => {
                    if node.rm().is_some() {
                        has_rm = 1.0;
                        rm_silence = rm_silence
                            .max(now.saturating_since(node.last_rm_heard()).as_secs_f64());
                    }
                }
                Role::Idle | Role::Joining => {}
            }
        }
        self.recorder
            .set_gauge(pulse_metrics::HAS_RM, Labels::NONE, has_rm);
        self.recorder
            .set_gauge(pulse_metrics::RM_SILENCE_SECS, Labels::NONE, rm_silence);
        self.recorder
            .set_gauge(pulse_metrics::GOSSIP_AGE_SECS, Labels::NONE, gossip_age);
        self.recorder.set_gauge(
            pulse_metrics::QUEUE_DEPTH,
            Labels::NONE,
            self.sim.pending() as f64,
        );
        if let Some(pulse) = self.pulse.as_mut() {
            pulse.tick(now, &mut self.recorder, NodeId::new(0), None);
        }
    }

    /// Records the first time every alive RM holds fresh summaries of all
    /// other alive domains.
    fn check_gossip_convergence(&mut self, now: SimTime) {
        if self.report.gossip_converged_at.is_some() {
            return;
        }
        let rms: Vec<&PeerNode> = self
            .alive
            .iter()
            .map(|id| &self.nodes[id])
            .filter(|n| n.role() == Role::Rm)
            .collect();
        if rms.len() < 2 {
            return;
        }
        let domains: Vec<arm_util::DomainId> = rms.iter().filter_map(|n| n.domain()).collect();
        let converged = rms.iter().all(|n| {
            let state = n.rm_state().expect("RM role");
            domains
                .iter()
                .filter(|d| **d != state.domain)
                .all(|d| state.summaries.get(d).is_some_and(|s| s.version >= 1))
        });
        if converged {
            self.report.gossip_converged_at = Some(now.as_secs_f64());
        }
    }

    /// Structural invariants of the live overlay, re-checked at every
    /// sample tick when the `check-invariants` feature is on. These are
    /// properties no reachable protocol state should violate; a panic here
    /// means a state-machine bug, not a bad scenario.
    #[cfg(feature = "check-invariants")]
    fn check_invariants(&self, now: SimTime) {
        use std::collections::BTreeMap as Map;
        let mut rm_of_domain: Map<arm_util::DomainId, NodeId> = Map::new();
        for id in &self.alive {
            let node = &self.nodes[id];
            // Loads are finite and non-negative for every alive peer.
            let load = node.load();
            assert!(
                load.is_finite() && load >= 0.0,
                "t={now}: peer {id} has invalid load {load}"
            );
            // Role::Rm and rm_state are set and cleared together, and an
            // RM's own domain id agrees with its state.
            let state = node.rm_state();
            assert_eq!(
                node.role() == Role::Rm,
                state.is_some(),
                "t={now}: peer {id} role/rm_state mismatch (role {:?})",
                node.role()
            );
            let Some(state) = state else { continue };
            assert_eq!(
                node.domain(),
                Some(state.domain),
                "t={now}: RM {id} domain disagrees with its rm_state"
            );
            if let Some(prev) = rm_of_domain.insert(state.domain, *id) {
                panic!(
                    "t={now}: domain {:?} claimed by two alive RMs: {prev} and {id}",
                    state.domain
                );
            }
            // Resource-graph index consistency: the format→vertex index
            // round-trips every interned state, and every edge references
            // existing states under its own id.
            let graph = &state.graph;
            for (sid, format) in graph.states() {
                assert_eq!(
                    graph.state_of(format),
                    Some(sid),
                    "t={now}: RM {id} graph index lost state {sid:?} ({format})"
                );
                assert_eq!(graph.format(sid), format);
            }
            let num_states = graph.num_states() as u32;
            for edge in graph.edges() {
                assert_eq!(
                    graph.edge(edge.id),
                    edge,
                    "t={now}: RM {id} graph edge id does not index its own slot"
                );
                assert!(
                    edge.from.0 < num_states && edge.to.0 < num_states,
                    "t={now}: RM {id} graph edge {:?} references a missing state",
                    edge.id
                );
            }
        }
    }

    fn finalize(mut self, started: std::time::Instant) -> (SimReport, Recorder) {
        // The horizon may fall between sample ticks; check the final state.
        #[cfg(feature = "check-invariants")]
        self.check_invariants(self.sim.now());
        self.report.final_peers = self.alive.len();
        self.report.final_domains = self
            .alive
            .iter()
            .filter(|id| self.nodes[id].role() == Role::Rm)
            .count();
        // Reply latencies: reconstruct from response_time; reply_latency
        // additionally includes rejected replies, which we approximate by
        // the response summary (documented).
        self.report.reply_latency = self.report.response_time.clone();
        self.report.wall_ms = started.elapsed().as_millis() as u64;
        self.report.events_processed = self.sim.processed();
        self.report.max_queue_depth = self.sim.max_queue_depth() as u64;
        // Allocator efficiency: sum search/cache counters over the RMs
        // still alive (counters of crashed RMs die with them, like every
        // other piece of in-node state).
        let mut alloc_totals = arm_core::AllocMetrics::default();
        for id in &self.alive {
            let Some(rm) = self.nodes[id].rm_state() else {
                continue;
            };
            let m = rm.alloc_metrics;
            alloc_totals.merge(&m);
            if self.recorder.is_enabled() {
                let labels = Labels::domain(rm.domain);
                self.recorder
                    .add("alloc_explored_prefixes", labels, m.explored_prefixes);
                self.recorder
                    .add("alloc_pruned_bound", labels, m.pruned_bound);
                self.recorder
                    .add("alloc_pruned_dominated", labels, m.pruned_dominated);
                self.recorder.add("alloc_cache_hits", labels, m.cache_hits);
                self.recorder
                    .add("alloc_cache_misses", labels, m.cache_misses);
            }
        }
        self.report.alloc = alloc_totals;
        if self.recorder.is_enabled() {
            self.recorder
                .add("des_events_processed", Labels::NONE, self.sim.processed());
            self.recorder
                .merge_histogram("peer_utilization", Labels::NONE, &self.util_hist);
            for id in &self.alive {
                let p = self.nodes[id].profiler();
                self.recorder
                    .set_gauge("peer_load", Labels::peer(*id), p.load());
            }
            self.profiler.export_into(&mut self.recorder);
            self.report.metrics = Some(self.recorder.snapshot());
            self.report.trace_counts = self
                .recorder
                .trace
                .kind_counts()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect();
            self.report.traces_dropped = self.recorder.trace.dropped();
        }
        if let Some(pulse) = &self.pulse {
            self.report.series = pulse.store.collect_since(0);
            self.report.health = pulse.evaluator.statuses();
        }
        (self.report, self.recorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_net::churn::ChurnParams;
    use arm_util::SimDuration;

    fn small_scenario(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            clusters: 2,
            peers_per_cluster: 8,
            horizon: SimTime::from_secs(60),
            warmup: SimDuration::from_secs(5),
            workload: arm_workload::WorkloadConfig {
                arrival_rate: 0.4,
                session_mean_secs: 20.0,
                ..arm_workload::WorkloadConfig::default()
            },
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn overlay_forms_and_tasks_complete() {
        let report = Simulation::new(small_scenario(1)).run();
        assert!(report.submitted > 5, "submitted {}", report.submitted);
        assert!(
            report.outcomes.total() >= report.submitted * 9 / 10,
            "most tasks get terminal outcomes: {:?} of {}",
            report.outcomes,
            report.submitted
        );
        assert!(
            report.outcomes.on_time > 0,
            "some tasks complete on time: {:?}",
            report.outcomes
        );
        assert_eq!(report.final_peers, 16);
        assert_eq!(report.final_domains, 2, "one RM per cluster");
        assert!(report.message_count() > 100);
        assert!(!report.fairness_series.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Simulation::new(small_scenario(7)).run();
        let b = Simulation::new(small_scenario(7)).run();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.message_count(), b.message_count());
        assert_eq!(a.fairness_series, b.fairness_series);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::new(small_scenario(1)).run();
        let b = Simulation::new(small_scenario(2)).run();
        // Different topology/workload draws — reports differ somewhere.
        assert!(
            a.message_count() != b.message_count()
                || a.outcomes != b.outcomes
                || a.fairness_series != b.fairness_series
        );
    }

    #[test]
    fn churn_triggers_failovers_and_repairs() {
        let mut cfg = small_scenario(3);
        cfg.horizon = SimTime::from_secs(120);
        cfg.churn = Some(ChurnParams {
            mean_uptime_secs: 40.0,
            mean_downtime_secs: 15.0,
            crash_fraction: 1.0,
            churning_fraction: 0.6,
        });
        let report = Simulation::new(cfg).run();
        // Crashes happened and the overlay survived.
        assert!(report.final_peers > 4);
        assert!(report.final_domains >= 1);
        // Under heavy churn at least some liveness machinery fired.
        assert!(
            report.promotions > 0 || report.repairs_ok + report.repairs_failed > 0,
            "failover machinery exercised: {report:?}"
        );
    }

    /// With `--features check-invariants` every sample tick of the churn
    /// scenario above re-runs the structural checks; this test exists so
    /// the feature build has an explicitly-named invariant workout (the
    /// assertions themselves live in `check_invariants` and panic on
    /// violation).
    #[cfg(feature = "check-invariants")]
    #[test]
    fn invariants_hold_under_churn() {
        let mut cfg = small_scenario(11);
        cfg.horizon = SimTime::from_secs(120);
        cfg.churn = Some(ChurnParams {
            mean_uptime_secs: 30.0,
            mean_downtime_secs: 10.0,
            crash_fraction: 1.0,
            churning_fraction: 0.7,
        });
        let mut sim = Simulation::new(cfg);
        // Store capture runs the persistence path (and, with lock-witness,
        // its instrumented lock) through the whole churny run.
        let capture = sim.enable_store();
        let report = sim.run();
        // The run sampled (so the checks actually fired) and survived.
        assert!(!report.fairness_series.is_empty());
        assert!(report.final_peers > 0);
        assert!(!capture.lock().is_empty(), "churn run persisted records");

        // With instrumented locks, the heavy-churn workload must leave the
        // runtime lock-order witness violation-free.
        #[cfg(feature = "lock-witness")]
        arm_util::lockwitness::assert_clean();
    }

    /// The parallel sweep under instrumented locks: many worker threads
    /// hammer the per-slot result locks; the witness must stay clean.
    #[cfg(feature = "lock-witness")]
    #[test]
    fn lock_witness_clean_under_parallel_sweep() {
        let configs: Vec<ScenarioConfig> = (1..=4).map(small_scenario).collect();
        let reports = crate::parallel::run_parallel(configs, 4);
        assert_eq!(reports.len(), 4);
        arm_util::lockwitness::assert_clean();
    }

    #[test]
    fn transmission_delay_slows_responses() {
        let mut fast = small_scenario(5);
        fast.jitter = 0.0;
        let mut slow = fast.clone();
        slow.transmission_delay = true;
        let a = Simulation::new(fast).run();
        let b = Simulation::new(slow).run();
        // Same workload; size-dependent delays can only stretch responses.
        let mut ra = a.response_time.clone();
        let mut rb = b.response_time.clone();
        assert!(rb.quantile(0.5) >= ra.quantile(0.5));
        assert!(b.outcomes.on_time > 0);
    }

    #[test]
    fn degenerate_scenarios_run() {
        // Single cluster, minimum viable peers.
        let mut tiny = small_scenario(6);
        tiny.clusters = 1;
        tiny.peers_per_cluster = 2;
        tiny.workload.num_objects = 3;
        let r = Simulation::new(tiny).run();
        assert_eq!(r.final_peers, 2);
        assert_eq!(r.final_domains, 1);
        // Zero arrivals: a quiet overlay still heartbeats.
        let mut quiet = small_scenario(7);
        quiet.workload.arrival_rate = 1e-9;
        let r = Simulation::new(quiet).run();
        assert_eq!(r.submitted, 0);
        assert!(r.message_count() > 0);
        assert_eq!(r.outcomes.total(), 0);
    }

    #[test]
    fn telemetry_records_protocol_events_and_spans() {
        let mut sim = Simulation::new(small_scenario(1));
        sim.enable_telemetry(1 << 16);
        let (report, recorder) = sim.run_traced();
        assert!(recorder.is_enabled());
        // Protocol machinery leaves a trace: the overlay formed (elections,
        // joins), gossip ran, and tasks moved through their lifecycle.
        let counts = recorder.trace.kind_counts();
        assert!(
            counts.get("rm_elected").copied().unwrap_or(0) >= 2,
            "{counts:?}"
        );
        assert!(counts.get("join_accepted").copied().unwrap_or(0) > 0);
        assert!(counts.get("gossip_round").copied().unwrap_or(0) > 0);
        assert!(counts.get("bloom_exchange").copied().unwrap_or(0) > 0);
        assert!(counts.get("task_phase").copied().unwrap_or(0) > 0);
        assert!(counts.get("sched_decision").copied().unwrap_or(0) > 0);
        // The report carries the same tallies plus a metrics snapshot.
        assert_eq!(
            report.trace_counts.get("gossip_round").copied(),
            counts.get("gossip_round").copied()
        );
        let metrics = report.metrics.as_ref().expect("telemetry was enabled");
        let phase_samples: u64 = metrics
            .histograms
            .iter()
            .filter(|h| h.key.starts_with("task_phase_seconds"))
            .map(|h| h.histogram.total())
            .sum();
        assert!(phase_samples > 0, "per-phase latency histograms populated");
        let total: u64 = metrics
            .histograms
            .iter()
            .filter(|h| h.key.starts_with("task_total_seconds"))
            .map(|h| h.histogram.total())
            .sum();
        assert!(total > 0, "completed tasks close their spans");
        // Allocator efficiency counters are exported per domain and summed
        // into the report.
        assert!(
            report.alloc.explored_prefixes > 0,
            "allocations ran: {:?}",
            report.alloc
        );
        assert!(
            report.alloc.cache_hits + report.alloc.cache_misses > 0,
            "path cache consulted: {:?}",
            report.alloc
        );
        let explored: u64 = metrics
            .counters
            .iter()
            .filter(|c| c.key.starts_with("alloc_explored_prefixes"))
            .map(|c| c.value)
            .sum();
        assert_eq!(explored, report.alloc.explored_prefixes);

        // Telemetry must not perturb the simulation itself.
        let baseline = Simulation::new(small_scenario(1)).run();
        assert_eq!(baseline.outcomes, report.outcomes);
        assert_eq!(baseline.events_processed, report.events_processed);
        assert!(baseline.metrics.is_none());
        assert!(baseline.trace_counts.is_empty());
    }

    #[test]
    fn pulse_retains_series_and_is_deterministic() {
        let run = |seed| {
            let mut sim = Simulation::new(small_scenario(seed));
            sim.enable_pulse(256);
            sim.run()
        };
        let report = run(1);
        // The retained window covers the run's sample ticks and carries
        // both the harness gauges and the pulse health gauges.
        assert!(!report.series.is_empty());
        assert!(report.series.tick_count() > 10);
        let keys: Vec<&str> = report
            .series
            .series
            .iter()
            .map(|s| s.key.as_str())
            .collect();
        assert!(
            keys.iter().any(|k| k.starts_with("peers_alive")),
            "{keys:?}"
        );
        assert!(
            keys.iter().any(|k| k.starts_with("pulse_has_rm")),
            "{keys:?}"
        );
        // A healthy overlay ends with no rule firing.
        assert!(
            report.health.iter().all(|h| !h.firing),
            "{:?}",
            report.health
        );
        // Bit-identical series across identically seeded runs: the sampler
        // only ever reads sim time and node state.
        let again = run(1);
        assert!(report.series == again.series, "series differ across runs");
        // Pulse must not perturb the simulation itself.
        let baseline = Simulation::new(small_scenario(1)).run();
        assert_eq!(baseline.outcomes, report.outcomes);
        assert_eq!(baseline.events_processed, report.events_processed);
        assert!(baseline.series.is_empty());
    }

    #[test]
    fn persistence_is_deterministic_and_replayable() {
        let run = |seed| {
            let mut sim = Simulation::new(small_scenario(seed));
            let capture = sim.enable_store();
            let report = sim.run();
            let streams = capture.lock().clone();
            (report, streams)
        };
        let (report, streams) = run(9);
        // Lifecycle intents were persisted for (at least) the leaders.
        assert!(!streams.is_empty(), "no intents persisted");
        let total: usize = streams.values().map(|b| b.len()).sum();
        assert!(total > 0);
        // Every captured stream replays cleanly through the real WAL
        // decoder: no truncation, no skipped records.
        for (node, bytes) in &streams {
            let (intents, rep) = arm_store::log::replay_intents(bytes);
            assert!(rep.truncated.is_none(), "{node}: {:?}", rep.truncated);
            assert_eq!(rep.skipped, 0, "{node} skipped records");
            assert_eq!(rep.replayed, intents.len());
            assert!(!intents.is_empty(), "{node} persisted an empty stream");
        }
        // Same seed ⇒ bit-identical persistence, and persistence must not
        // perturb the simulation itself.
        let (again, streams2) = run(9);
        assert_eq!(streams, streams2, "persisted streams differ across runs");
        assert_eq!(again.outcomes, report.outcomes);
        let baseline = Simulation::new(small_scenario(9)).run();
        assert_eq!(baseline.outcomes, report.outcomes);
        assert_eq!(baseline.events_processed, report.events_processed);
    }

    #[test]
    fn message_loss_is_tolerated() {
        let mut cfg = small_scenario(4);
        cfg.loss = 0.05;
        let report = Simulation::new(cfg).run();
        assert!(report.messages_lost > 0);
        assert!(report.outcomes.on_time > 0, "{:?}", report.outcomes);
    }
}
