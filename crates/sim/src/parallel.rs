//! Data-parallel scenario sweeps.
//!
//! Experiments compare many independent scenario runs (allocators × rates
//! × seeds). Each run is single-threaded and deterministic, so a sweep is
//! embarrassingly parallel: [`run_parallel`] fans the configurations out
//! over a bounded pool of OS threads (scoped — no `'static` bounds, no
//! leaked threads) and returns reports in input order.

use crate::{ScenarioConfig, SimReport, Simulation};
use arm_model::alloc::{AllocError, Allocation, FairnessAllocator};
use arm_model::{PeerView, QosSpec, ResourceGraph, StateId};

/// Runs every scenario, using up to `threads` worker threads (0 = one per
/// available CPU, capped at the number of scenarios). Results come back in
/// the same order as the input; determinism per scenario is unaffected by
/// the parallelism.
pub fn run_parallel(configs: Vec<ScenarioConfig>, threads: usize) -> Vec<SimReport> {
    let n = configs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        threads
    }
    .min(n)
    .max(1);

    if workers == 1 {
        return configs
            .into_iter()
            .map(|cfg| Simulation::new(cfg).run())
            .collect();
    }

    // Work-stealing by atomic index over a shared job list.
    let jobs: Vec<ScenarioConfig> = configs;
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<SimReport>> = (0..n).map(|_| None).collect();
    let slot_refs: Vec<crate::sync::Lock<&mut Option<SimReport>>> = slots
        .iter_mut()
        .map(|s| crate::sync::mutex("parallel.slot", s))
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let report = Simulation::new(jobs[i].clone()).run();
                **slot_refs[i].lock() = Some(report);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// One independent allocation request for [`allocate_batch`]: a domain's
/// resource graph and load view plus the request shape. Domains are
/// disjoint, so a batch of these is embarrassingly parallel.
#[derive(Debug, Clone)]
pub struct AllocJob<'a> {
    /// The domain's resource graph.
    pub graph: &'a ResourceGraph,
    /// The domain's peer load view.
    pub view: &'a PeerView,
    /// Initial application state.
    pub init: StateId,
    /// Acceptable goal states.
    pub goals: &'a [StateId],
    /// The task's QoS requirements.
    pub qos: &'a QosSpec,
}

/// Runs one allocation per job over up to `threads` scoped worker threads
/// (0 = one per available CPU, capped at the job count) and returns the
/// results **in input order** — the same results, bit for bit, as calling
/// [`FairnessAllocator::allocate`] on each job sequentially, because every
/// job is a pure function of its own inputs.
///
/// No RNG crosses threads: a [`arm_model::AllocatorKind::Random`] allocator
/// deterministically degrades to its documented no-RNG fallback (first
/// feasible candidate). Use the sequential API when per-job RNG draws
/// matter.
pub fn allocate_batch(
    allocator: &FairnessAllocator,
    jobs: &[AllocJob<'_>],
    threads: usize,
) -> Vec<Result<Allocation, AllocError>> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        threads
    }
    .min(n)
    .max(1);

    let run_one = |j: &AllocJob<'_>| -> Result<Allocation, AllocError> {
        allocator.allocate(j.graph, j.view, j.init, j.goals, j.qos, None)
    };

    if workers == 1 {
        return jobs.iter().map(run_one).collect();
    }

    // Same shape as `run_parallel`: work-stealing by atomic index, slots
    // keyed by input position so output order is deterministic.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<Allocation, AllocError>>> = (0..n).map(|_| None).collect();
    let slot_refs: Vec<crate::sync::Lock<&mut Option<Result<Allocation, AllocError>>>> = slots
        .iter_mut()
        .map(|s| crate::sync::mutex("parallel.slot", s))
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = run_one(&jobs[i]);
                **slot_refs[i].lock() = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_util::{SimDuration, SimTime};

    fn scenario(seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig {
            seed,
            clusters: 1,
            peers_per_cluster: 6,
            horizon: SimTime::from_secs(40),
            warmup: SimDuration::from_secs(5),
            ..ScenarioConfig::default()
        };
        cfg.workload.arrival_rate = 0.4;
        cfg
    }

    #[test]
    fn parallel_matches_sequential() {
        let configs: Vec<ScenarioConfig> = (1..=6).map(scenario).collect();
        let seq = run_parallel(configs.clone(), 1);
        let par = run_parallel(configs, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(
                a.outcomes, b.outcomes,
                "parallelism must not change results"
            );
            assert_eq!(a.events_processed, b.events_processed);
            assert_eq!(a.message_count(), b.message_count());
        }
    }

    #[test]
    fn results_in_input_order() {
        // Seeds map 1:1 to reports; distinct seeds give distinct runs.
        let configs: Vec<ScenarioConfig> = vec![scenario(10), scenario(20), scenario(10)];
        let reports = run_parallel(configs, 3);
        assert_eq!(
            reports[0].outcomes, reports[2].outcomes,
            "same seed, same slot result"
        );
        assert_eq!(reports[0].events_processed, reports[2].events_processed);
    }

    #[test]
    fn empty_and_zero_threads() {
        assert!(run_parallel(vec![], 4).is_empty());
        let r = run_parallel(vec![scenario(1)], 0);
        assert_eq!(r.len(), 1);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use arm_model::{AllocatorKind, Codec, MediaFormat, PeerInfo, Resolution, ServiceCost};
    use arm_util::{DetRng, NodeId, ServiceId, SimDuration};

    /// Builds `n` independent single-domain worlds (layered graph + loaded
    /// view) differing only by seed.
    fn domains(n: u64) -> Vec<(ResourceGraph, PeerView, StateId, StateId)> {
        (0..n)
            .map(|seed| {
                let mut rng = DetRng::new(1000 + seed);
                let mut gr = ResourceGraph::new();
                let mut fmt = 0u32;
                let mut fresh = |gr: &mut ResourceGraph| {
                    fmt += 1;
                    gr.intern_state(MediaFormat::new(
                        Codec::ALL[fmt as usize % Codec::ALL.len()],
                        Resolution::new(100 + fmt as u16, 100),
                        fmt,
                    ))
                };
                let layers = 4usize;
                let mut states: Vec<Vec<StateId>> = Vec::new();
                for li in 0..layers {
                    let w = if li == 0 || li == layers - 1 { 1 } else { 3 };
                    states.push((0..w).map(|_| fresh(&mut gr)).collect());
                }
                let mut svc = 0u64;
                for li in 0..layers - 1 {
                    for &a in &states[li] {
                        for &b in &states[li + 1] {
                            svc += 1;
                            gr.add_edge(
                                a,
                                b,
                                NodeId::new(rng.below(6)),
                                ServiceId::new(svc),
                                ServiceCost {
                                    work_per_sec: rng.uniform(1.0, 8.0),
                                    setup_work: rng.uniform(0.5, 2.0),
                                    bandwidth_kbps: 64,
                                },
                            );
                        }
                    }
                }
                let mut view = PeerView::new();
                for p in 0..6u64 {
                    let mut info = PeerInfo::idle(rng.uniform(50.0, 150.0), 100_000);
                    info.load = rng.uniform(0.0, 40.0);
                    view.upsert(NodeId::new(p), info);
                }
                let init = states[0][0];
                let goal = states[layers - 1][0];
                (gr, view, init, goal)
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let worlds = domains(8);
        let qos = QosSpec::with_deadline(SimDuration::from_secs(30));
        let goals: Vec<[StateId; 1]> = worlds.iter().map(|w| [w.3]).collect();
        let jobs: Vec<AllocJob<'_>> = worlds
            .iter()
            .zip(&goals)
            .map(|(w, g)| AllocJob {
                graph: &w.0,
                view: &w.1,
                init: w.2,
                goals: g,
                qos: &qos,
            })
            .collect();
        let allocator = FairnessAllocator::paper();
        let seq = allocate_batch(&allocator, &jobs, 1);
        let par = allocate_batch(&allocator, &jobs, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.path, y.path);
                    assert_eq!(x.fairness.to_bits(), y.fairness.to_bits());
                    assert_eq!(x.est_response, y.est_response);
                    assert_eq!(x.load_deltas, y.load_deltas);
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                (x, y) => panic!("parallel changed outcome: {x:?} vs {y:?}"),
            }
        }
        // And both match direct sequential calls.
        for (job, r) in jobs.iter().zip(&seq) {
            let direct =
                allocator.allocate(job.graph, job.view, job.init, job.goals, job.qos, None);
            assert_eq!(&direct, r);
        }
    }

    #[test]
    fn batch_supports_branch_and_bound() {
        let worlds = domains(4);
        let qos = QosSpec::with_deadline(SimDuration::from_secs(30));
        let goals: Vec<[StateId; 1]> = worlds.iter().map(|w| [w.3]).collect();
        let jobs: Vec<AllocJob<'_>> = worlds
            .iter()
            .zip(&goals)
            .map(|(w, g)| AllocJob {
                graph: &w.0,
                view: &w.1,
                init: w.2,
                goals: g,
                qos: &qos,
            })
            .collect();
        let mut bnb = FairnessAllocator::paper();
        bnb.params.mode = arm_model::ExplorationMode::BranchAndBound;
        let full = allocate_batch(&FairnessAllocator::paper(), &jobs, 0);
        let pruned = allocate_batch(&bnb, &jobs, 0);
        for (a, b) in full.iter().zip(&pruned) {
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.path, y.path);
                    assert_eq!(x.fairness.to_bits(), y.fairness.to_bits());
                    assert!(y.stats.explored_prefixes <= x.stats.explored_prefixes);
                }
                (Err(x), Err(y)) => {
                    assert_eq!(std::mem::discriminant(x), std::mem::discriminant(y))
                }
                (x, y) => panic!("modes disagree: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn batch_random_without_rng_is_deterministic() {
        let worlds = domains(3);
        let qos = QosSpec::with_deadline(SimDuration::from_secs(30));
        let goals: Vec<[StateId; 1]> = worlds.iter().map(|w| [w.3]).collect();
        let jobs: Vec<AllocJob<'_>> = worlds
            .iter()
            .zip(&goals)
            .map(|(w, g)| AllocJob {
                graph: &w.0,
                view: &w.1,
                init: w.2,
                goals: g,
                qos: &qos,
            })
            .collect();
        let random = FairnessAllocator::with_kind(AllocatorKind::Random);
        let a = allocate_batch(&random, &jobs, 3);
        let b = allocate_batch(&random, &jobs, 3);
        assert_eq!(a, b, "no-RNG fallback must be reproducible");
    }

    #[test]
    fn batch_empty_is_empty() {
        let allocator = FairnessAllocator::paper();
        assert!(allocate_batch(&allocator, &[], 4).is_empty());
    }
}
