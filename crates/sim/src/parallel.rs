//! Data-parallel scenario sweeps.
//!
//! Experiments compare many independent scenario runs (allocators × rates
//! × seeds). Each run is single-threaded and deterministic, so a sweep is
//! embarrassingly parallel: [`run_parallel`] fans the configurations out
//! over a bounded pool of OS threads (scoped — no `'static` bounds, no
//! leaked threads) and returns reports in input order.

use crate::{ScenarioConfig, SimReport, Simulation};

/// Runs every scenario, using up to `threads` worker threads (0 = one per
/// available CPU, capped at the number of scenarios). Results come back in
/// the same order as the input; determinism per scenario is unaffected by
/// the parallelism.
pub fn run_parallel(configs: Vec<ScenarioConfig>, threads: usize) -> Vec<SimReport> {
    let n = configs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        threads
    }
    .min(n)
    .max(1);

    if workers == 1 {
        return configs
            .into_iter()
            .map(|cfg| Simulation::new(cfg).run())
            .collect();
    }

    // Work-stealing by atomic index over a shared job list.
    let jobs: Vec<ScenarioConfig> = configs;
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<SimReport>> = (0..n).map(|_| None).collect();
    let slot_refs: Vec<std::sync::Mutex<&mut Option<SimReport>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let report = Simulation::new(jobs[i].clone()).run();
                **slot_refs[i].lock().expect("slot lock") = Some(report);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_util::{SimDuration, SimTime};

    fn scenario(seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig {
            seed,
            clusters: 1,
            peers_per_cluster: 6,
            horizon: SimTime::from_secs(40),
            warmup: SimDuration::from_secs(5),
            ..ScenarioConfig::default()
        };
        cfg.workload.arrival_rate = 0.4;
        cfg
    }

    #[test]
    fn parallel_matches_sequential() {
        let configs: Vec<ScenarioConfig> = (1..=6).map(scenario).collect();
        let seq = run_parallel(configs.clone(), 1);
        let par = run_parallel(configs, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(
                a.outcomes, b.outcomes,
                "parallelism must not change results"
            );
            assert_eq!(a.events_processed, b.events_processed);
            assert_eq!(a.message_count(), b.message_count());
        }
    }

    #[test]
    fn results_in_input_order() {
        // Seeds map 1:1 to reports; distinct seeds give distinct runs.
        let configs: Vec<ScenarioConfig> = vec![scenario(10), scenario(20), scenario(10)];
        let reports = run_parallel(configs, 3);
        assert_eq!(
            reports[0].outcomes, reports[2].outcomes,
            "same seed, same slot result"
        );
        assert_eq!(reports[0].events_processed, reports[2].events_processed);
    }

    #[test]
    fn empty_and_zero_threads() {
        assert!(run_parallel(vec![], 4).is_empty());
        let r = run_parallel(vec![scenario(1)], 0);
        assert_eq!(r.len(), 1);
    }
}
