//! Run results.

use arm_util::stats::Summary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Terminal task outcome tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Completed within deadline.
    pub on_time: usize,
    /// Completed after the deadline.
    pub late: usize,
    /// Rejected at admission (nowhere to run).
    pub rejected: usize,
    /// Started but lost (unrepaired failure).
    pub failed: usize,
}

impl OutcomeCounts {
    /// All terminal outcomes.
    pub fn total(&self) -> usize {
        self.on_time + self.late + self.rejected + self.failed
    }

    /// Deadline miss ratio among *admitted* tasks (late + failed over
    /// completed + failed).
    pub fn miss_ratio(&self) -> f64 {
        let admitted = self.on_time + self.late + self.failed;
        if admitted == 0 {
            0.0
        } else {
            (self.late + self.failed) as f64 / admitted as f64
        }
    }

    /// Fraction of all submitted tasks that completed on time (the
    /// paper's goal: "maximize the number of applications that meet their
    /// deadlines", §3.3).
    pub fn goodput(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.on_time as f64 / self.total() as f64
        }
    }

    /// Fraction rejected.
    pub fn rejection_ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.rejected as f64 / self.total() as f64
        }
    }
}

/// Everything measured during one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Tasks injected.
    pub submitted: usize,
    /// Outcome tallies.
    pub outcomes: OutcomeCounts,
    /// Query→reply latency (seconds) of every answered task.
    pub reply_latency: Summary,
    /// Submission→stream-start response time (seconds) of completed tasks.
    pub response_time: Summary,
    /// (t_secs, Jain fairness of ground-truth peer loads) samples.
    pub fairness_series: Vec<(f64, f64)>,
    /// (t_secs, mean utilization) samples.
    pub utilization_series: Vec<(f64, f64)>,
    /// Messages delivered, by kind: (count, bytes).
    pub messages: BTreeMap<String, (u64, u64)>,
    /// Messages lost in the network.
    pub messages_lost: u64,
    /// Backup→RM promotions observed.
    pub promotions: usize,
    /// Session repairs that found a replacement allocation.
    pub repairs_ok: usize,
    /// Session repairs that failed.
    pub repairs_failed: usize,
    /// Adaptive session migrations (§4.5).
    pub reassignments: usize,
    /// Task queries redirected between domains.
    pub redirects: u64,
    /// Number of RMs alive at the end.
    pub final_domains: usize,
    /// Number of peers alive at the end.
    pub final_peers: usize,
    /// Wall-clock milliseconds the run took (host time; informational).
    pub wall_ms: u128,
    /// Total events processed by the DES kernel.
    pub events_processed: u64,
    /// First instant (seconds) at which every alive RM held a fresh
    /// (version ≥ 1) summary of every other alive domain — the gossip
    /// convergence point (E12). `None` if never reached.
    pub gossip_converged_at: Option<f64>,
}

impl SimReport {
    /// Total messages delivered.
    pub fn message_count(&self) -> u64 {
        self.messages.values().map(|(c, _)| c).sum()
    }

    /// Total bytes delivered.
    pub fn message_bytes(&self) -> u64 {
        self.messages.values().map(|(_, b)| b).sum()
    }

    /// Mean of the fairness samples (time-averaged load balance).
    pub fn mean_fairness(&self) -> f64 {
        if self.fairness_series.is_empty() {
            return 1.0;
        }
        self.fairness_series.iter().map(|(_, f)| f).sum::<f64>()
            / self.fairness_series.len() as f64
    }

    /// Mean of the utilization samples.
    pub fn mean_utilization(&self) -> f64 {
        if self.utilization_series.is_empty() {
            return 0.0;
        }
        self.utilization_series.iter().map(|(_, u)| u).sum::<f64>()
            / self.utilization_series.len() as f64
    }

    /// Control-message overhead in messages per peer per second.
    pub fn control_msgs_per_peer_sec(&self, peers: usize, secs: f64) -> f64 {
        if peers == 0 || secs <= 0.0 {
            return 0.0;
        }
        self.message_count() as f64 / peers as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_ratios() {
        let c = OutcomeCounts {
            on_time: 6,
            late: 2,
            rejected: 1,
            failed: 1,
        };
        assert_eq!(c.total(), 10);
        assert!((c.miss_ratio() - 3.0 / 9.0).abs() < 1e-12);
        assert!((c.goodput() - 0.6).abs() < 1e-12);
        assert!((c.rejection_ratio() - 0.1).abs() < 1e-12);
        let empty = OutcomeCounts::default();
        assert_eq!(empty.miss_ratio(), 0.0);
        assert_eq!(empty.goodput(), 0.0);
    }

    #[test]
    fn report_aggregates() {
        let mut r = SimReport::default();
        r.messages.insert("heartbeat".into(), (10, 560));
        r.messages.insert("task_query".into(), (2, 300));
        assert_eq!(r.message_count(), 12);
        assert_eq!(r.message_bytes(), 860);
        r.fairness_series = vec![(1.0, 0.8), (2.0, 0.6)];
        assert!((r.mean_fairness() - 0.7).abs() < 1e-12);
        assert!((r.control_msgs_per_peer_sec(4, 3.0) - 1.0).abs() < 1e-12);
        assert_eq!(SimReport::default().mean_fairness(), 1.0);
    }
}
