//! Run results.

use arm_core::AllocMetrics;
use arm_telemetry::{HealthStatus, MetricsSnapshot, SeriesBatch};
use arm_util::stats::Summary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Terminal task outcome tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Completed within deadline.
    pub on_time: usize,
    /// Completed after the deadline.
    pub late: usize,
    /// Rejected at admission (nowhere to run).
    pub rejected: usize,
    /// Started but lost (unrepaired failure).
    pub failed: usize,
}

impl OutcomeCounts {
    /// All terminal outcomes.
    pub fn total(&self) -> usize {
        self.on_time + self.late + self.rejected + self.failed
    }

    /// Deadline miss ratio among *admitted* tasks (late + failed over
    /// completed + failed).
    pub fn miss_ratio(&self) -> f64 {
        let admitted = self.on_time + self.late + self.failed;
        if admitted == 0 {
            0.0
        } else {
            (self.late + self.failed) as f64 / admitted as f64
        }
    }

    /// Fraction of all submitted tasks that completed on time (the
    /// paper's goal: "maximize the number of applications that meet their
    /// deadlines", §3.3).
    pub fn goodput(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.on_time as f64 / self.total() as f64
        }
    }

    /// Fraction rejected.
    pub fn rejection_ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.rejected as f64 / self.total() as f64
        }
    }
}

/// Everything measured during one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Tasks injected.
    pub submitted: usize,
    /// Outcome tallies.
    pub outcomes: OutcomeCounts,
    /// Query→reply latency (seconds) of every answered task.
    pub reply_latency: Summary,
    /// Submission→stream-start response time (seconds) of completed tasks.
    pub response_time: Summary,
    /// (t_secs, Jain fairness of ground-truth peer loads) samples.
    pub fairness_series: Vec<(f64, f64)>,
    /// (t_secs, mean utilization) samples.
    pub utilization_series: Vec<(f64, f64)>,
    /// Messages delivered, by kind: (count, bytes).
    pub messages: BTreeMap<String, (u64, u64)>,
    /// Messages lost in the network.
    pub messages_lost: u64,
    /// Backup→RM promotions observed.
    pub promotions: usize,
    /// Session repairs that found a replacement allocation.
    pub repairs_ok: usize,
    /// Session repairs that failed.
    pub repairs_failed: usize,
    /// Adaptive session migrations (§4.5).
    pub reassignments: usize,
    /// Task queries redirected between domains.
    pub redirects: u64,
    /// Number of RMs alive at the end.
    pub final_domains: usize,
    /// Number of peers alive at the end.
    pub final_peers: usize,
    /// Wall-clock milliseconds the run took (host time; informational).
    pub wall_ms: u64,
    /// Total events processed by the DES kernel.
    pub events_processed: u64,
    /// High-water mark of the DES event-list depth.
    pub max_queue_depth: u64,
    /// First instant (seconds) at which every alive RM held a fresh
    /// (version ≥ 1) summary of every other alive domain — the gossip
    /// convergence point (E12). `None` if never reached.
    pub gossip_converged_at: Option<f64>,
    /// Allocator efficiency totals summed over every RM alive at the end
    /// of the run: prefixes explored/pruned by the path search and the
    /// structural path cache's hit/miss counts.
    pub alloc: AllocMetrics,
    /// Metrics snapshot; present when the run had telemetry enabled.
    pub metrics: Option<MetricsSnapshot>,
    /// Structured trace events recorded per kind, *including* events the
    /// in-memory ring buffer evicted. Empty when telemetry was off.
    pub trace_counts: BTreeMap<String, u64>,
    /// Trace events evicted from the bounded ring before export (absent in
    /// pre-tracing reports, hence the default).
    #[serde(default)]
    pub traces_dropped: u64,
    /// The full retained time-series window (delta-encoded, shared tick
    /// axis) when the run had the pulse plane enabled — the raw material
    /// for convergence curves. Empty (and omitted from JSON) otherwise.
    #[serde(default, skip_serializing_if = "SeriesBatch::is_empty")]
    pub series: SeriesBatch,
    /// Final health-rule evaluations when the pulse plane was enabled.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub health: Vec<HealthStatus>,
}

impl SimReport {
    /// Total messages delivered.
    pub fn message_count(&self) -> u64 {
        self.messages.values().map(|(c, _)| c).sum()
    }

    /// Total bytes delivered.
    pub fn message_bytes(&self) -> u64 {
        self.messages.values().map(|(_, b)| b).sum()
    }

    /// Mean of the fairness samples (time-averaged load balance).
    pub fn mean_fairness(&self) -> f64 {
        if self.fairness_series.is_empty() {
            return 1.0;
        }
        self.fairness_series.iter().map(|(_, f)| f).sum::<f64>() / self.fairness_series.len() as f64
    }

    /// Mean of the utilization samples.
    pub fn mean_utilization(&self) -> f64 {
        if self.utilization_series.is_empty() {
            return 0.0;
        }
        self.utilization_series.iter().map(|(_, u)| u).sum::<f64>()
            / self.utilization_series.len() as f64
    }

    /// Control-message overhead in messages per peer per second.
    pub fn control_msgs_per_peer_sec(&self, peers: usize, secs: f64) -> f64 {
        if peers == 0 || secs <= 0.0 {
            return 0.0;
        }
        self.message_count() as f64 / peers as f64 / secs
    }

    /// Folds another run's results into this one, for aggregating sweeps
    /// or sharded runs: tallies add, latency summaries pool their samples
    /// (quantiles stay exact), time series concatenate, metric snapshots
    /// merge, and the queue-depth high-water mark takes the maximum.
    pub fn merge(&mut self, other: &SimReport) {
        self.submitted += other.submitted;
        self.outcomes.on_time += other.outcomes.on_time;
        self.outcomes.late += other.outcomes.late;
        self.outcomes.rejected += other.outcomes.rejected;
        self.outcomes.failed += other.outcomes.failed;
        self.reply_latency.merge(&other.reply_latency);
        self.response_time.merge(&other.response_time);
        self.fairness_series
            .extend(other.fairness_series.iter().copied());
        self.utilization_series
            .extend(other.utilization_series.iter().copied());
        for (kind, (count, bytes)) in &other.messages {
            let entry = self.messages.entry(kind.clone()).or_insert((0, 0));
            entry.0 += count;
            entry.1 += bytes;
        }
        self.messages_lost += other.messages_lost;
        self.promotions += other.promotions;
        self.repairs_ok += other.repairs_ok;
        self.repairs_failed += other.repairs_failed;
        self.reassignments += other.reassignments;
        self.redirects += other.redirects;
        self.final_domains += other.final_domains;
        self.final_peers += other.final_peers;
        self.wall_ms += other.wall_ms;
        self.events_processed += other.events_processed;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.alloc.merge(&other.alloc);
        self.gossip_converged_at = match (self.gossip_converged_at, other.gossip_converged_at) {
            // Merged runs all converged: report the slowest of them.
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
        match (&mut self.metrics, &other.metrics) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.metrics = Some(theirs.clone()),
            _ => {}
        }
        for (kind, count) in &other.trace_counts {
            *self.trace_counts.entry(kind.clone()).or_insert(0) += count;
        }
        self.traces_dropped += other.traces_dropped;
        // Series rings have per-run tick axes that don't concatenate
        // meaningfully; keep the first non-empty window. Health statuses
        // pool (each carries its rule name).
        if self.series.is_empty() && !other.series.is_empty() {
            self.series = other.series.clone();
        }
        self.health.extend(other.health.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_ratios() {
        let c = OutcomeCounts {
            on_time: 6,
            late: 2,
            rejected: 1,
            failed: 1,
        };
        assert_eq!(c.total(), 10);
        assert!((c.miss_ratio() - 3.0 / 9.0).abs() < 1e-12);
        assert!((c.goodput() - 0.6).abs() < 1e-12);
        assert!((c.rejection_ratio() - 0.1).abs() < 1e-12);
        let empty = OutcomeCounts::default();
        assert_eq!(empty.miss_ratio(), 0.0);
        assert_eq!(empty.goodput(), 0.0);
    }

    #[test]
    fn report_aggregates() {
        let mut r = SimReport::default();
        r.messages.insert("heartbeat".into(), (10, 560));
        r.messages.insert("task_query".into(), (2, 300));
        assert_eq!(r.message_count(), 12);
        assert_eq!(r.message_bytes(), 860);
        r.fairness_series = vec![(1.0, 0.8), (2.0, 0.6)];
        assert!((r.mean_fairness() - 0.7).abs() < 1e-12);
        assert!((r.control_msgs_per_peer_sec(4, 3.0) - 1.0).abs() < 1e-12);
        assert_eq!(SimReport::default().mean_fairness(), 1.0);
    }

    #[test]
    fn merge_pools_tallies_and_samples() {
        let mut a = SimReport {
            submitted: 10,
            outcomes: OutcomeCounts {
                on_time: 7,
                late: 1,
                rejected: 1,
                failed: 1,
            },
            messages_lost: 2,
            wall_ms: 5,
            events_processed: 100,
            max_queue_depth: 40,
            gossip_converged_at: Some(3.0),
            ..SimReport::default()
        };
        a.response_time.observe(0.1);
        a.messages.insert("heartbeat".into(), (10, 560));
        a.trace_counts.insert("gossip_round".into(), 4);

        let mut b = SimReport {
            submitted: 5,
            outcomes: OutcomeCounts {
                on_time: 5,
                ..OutcomeCounts::default()
            },
            wall_ms: 7,
            events_processed: 50,
            max_queue_depth: 60,
            gossip_converged_at: Some(2.0),
            ..SimReport::default()
        };
        b.response_time.observe(0.3);
        b.messages.insert("heartbeat".into(), (4, 224));
        b.messages.insert("task_query".into(), (1, 100));
        b.trace_counts.insert("gossip_round".into(), 6);
        b.trace_counts.insert("rm_elected".into(), 1);

        a.merge(&b);
        assert_eq!(a.submitted, 15);
        assert_eq!(a.outcomes.on_time, 12);
        assert_eq!(a.response_time.count(), 2);
        assert_eq!(a.messages["heartbeat"], (14, 784));
        assert_eq!(a.messages["task_query"], (1, 100));
        assert_eq!(a.wall_ms, 12);
        assert_eq!(a.events_processed, 150);
        assert_eq!(a.max_queue_depth, 60);
        assert_eq!(a.gossip_converged_at, Some(3.0));
        assert_eq!(a.trace_counts["gossip_round"], 10);
        assert_eq!(a.trace_counts["rm_elected"], 1);

        // A shard that never converged poisons the merged convergence.
        a.merge(&SimReport::default());
        assert_eq!(a.gossip_converged_at, None);
    }
}
