//! Peer-side profiling (§2, §3.2, §4.4 of the paper).
//!
//! "The Profiler on the processor is responsible for measuring the current
//! processor and network load of the peer and monitoring the computation
//! and communication times of the applications as they execute. The
//! Profiler measurements will be propagated to the Resource Manager of the
//! domain."
//!
//! The [`Profiler`] maintains:
//!
//! * the peer's sustained processing load `l_i` (capacity × utilization)
//!   and used bandwidth `bw_i`, accounted from session opens/closes plus a
//!   transient component the local scheduler reports;
//! * EWMA estimates of per-service execution times and per-peer
//!   communication times (§3.2: "local application execution and
//!   communication times");
//! * the peer's current service dependencies — "which peers are currently
//!   receiving services by this peer or offering services to this peer"
//!   (§3.2 item 5);
//! * the periodic load-report schedule of §4.4, including the
//!   report-period trade-off experiment's knob (E10).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use arm_telemetry::{Labels, Recorder};
use arm_util::ratelimit::Periodic;
use arm_util::{Ewma, NodeId, ServiceId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Histogram bucket bounds for peer utilization (fraction of capacity;
/// the open `+Inf` bucket catches transient overload above 1.0).
pub const UTILIZATION_BOUNDS: &[f64] = &[0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];

/// A point-in-time load report propagated to the Resource Manager (§4.4,
/// intra-domain propagation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Reporting peer.
    pub node: NodeId,
    /// Virtual time the sample was taken.
    pub at: SimTime,
    /// Processing load `l_i` in work units per second.
    pub load: f64,
    /// Processing capacity in work units per second (lets the RM compute
    /// utilization without a second lookup).
    pub capacity: f64,
    /// Used bandwidth `bw_i` in kbps.
    pub bandwidth_used_kbps: u32,
    /// Total link bandwidth in kbps.
    pub bandwidth_capacity_kbps: u32,
    /// Ready-queue length at the local scheduler (a congestion signal).
    pub queue_len: usize,
}

impl LoadReport {
    /// Utilization in [0, ∞).
    pub fn utilization(&self) -> f64 {
        if self.capacity <= 0.0 {
            0.0
        } else {
            self.load / self.capacity
        }
    }
}

/// Per-peer profiler state.
#[derive(Debug, Clone)]
pub struct Profiler {
    node: NodeId,
    capacity: f64,
    bw_capacity_kbps: u32,
    session_load: f64,
    session_bw_kbps: u32,
    transient_load: f64,
    queue_len: usize,
    exec_estimates: BTreeMap<ServiceId, Ewma>,
    comm_estimates: BTreeMap<NodeId, Ewma>,
    serving_to: BTreeSet<NodeId>,
    served_by: BTreeSet<NodeId>,
    report_timer: Periodic,
    ewma_alpha: f64,
}

impl Profiler {
    /// Creates a profiler for a peer with the given capacities and load
    /// report period.
    pub fn new(
        node: NodeId,
        capacity: f64,
        bw_capacity_kbps: u32,
        report_period: SimDuration,
    ) -> Self {
        assert!(capacity > 0.0);
        Self {
            node,
            capacity,
            bw_capacity_kbps,
            session_load: 0.0,
            session_bw_kbps: 0,
            transient_load: 0.0,
            queue_len: 0,
            exec_estimates: BTreeMap::new(),
            comm_estimates: BTreeMap::new(),
            serving_to: BTreeSet::new(),
            served_by: BTreeSet::new(),
            report_timer: Periodic::new(report_period, SimTime::ZERO + report_period),
            ewma_alpha: 0.2,
        }
    }

    /// The peer this profiler belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Processing capacity in work units per second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Link capacity in kbps.
    pub fn bandwidth_capacity_kbps(&self) -> u32 {
        self.bw_capacity_kbps
    }

    // ---- load accounting -------------------------------------------------

    /// Records a session starting on this peer: `work_per_sec` of sustained
    /// processing and `bw_kbps` of bandwidth.
    pub fn session_opened(&mut self, work_per_sec: f64, bw_kbps: u32) {
        debug_assert!(work_per_sec >= 0.0);
        self.session_load += work_per_sec;
        self.session_bw_kbps = self.session_bw_kbps.saturating_add(bw_kbps);
    }

    /// Records a session ending.
    pub fn session_closed(&mut self, work_per_sec: f64, bw_kbps: u32) {
        self.session_load = (self.session_load - work_per_sec).max(0.0);
        self.session_bw_kbps = self.session_bw_kbps.saturating_sub(bw_kbps);
    }

    /// Sets the transient load component (e.g. the local scheduler's
    /// current execution rate) and ready-queue length.
    pub fn set_transient(&mut self, load: f64, queue_len: usize) {
        debug_assert!(load >= 0.0);
        self.transient_load = load;
        self.queue_len = queue_len;
    }

    /// Current total processing load `l_i`.
    pub fn load(&self) -> f64 {
        self.session_load + self.transient_load
    }

    /// Current utilization (load / capacity).
    pub fn utilization(&self) -> f64 {
        self.load() / self.capacity
    }

    /// Current used bandwidth `bw_i` in kbps.
    pub fn bandwidth_used_kbps(&self) -> u32 {
        self.session_bw_kbps
    }

    /// Remaining processing headroom.
    pub fn available_capacity(&self) -> f64 {
        (self.capacity - self.load()).max(0.0)
    }

    // ---- execution & communication time estimation -----------------------

    /// Feeds an observed execution time of a service run on this peer.
    pub fn observe_execution(&mut self, service: ServiceId, secs: f64) {
        self.exec_estimates
            .entry(service)
            .or_insert_with(|| Ewma::new(self.ewma_alpha))
            .observe(secs);
    }

    /// Current execution-time estimate for a service, if any runs have
    /// been observed.
    pub fn execution_estimate(&self, service: ServiceId) -> Option<f64> {
        self.exec_estimates.get(&service).and_then(|e| e.value())
    }

    /// Feeds an observed communication time (e.g. request→ack round trip)
    /// to a peer.
    pub fn observe_comm(&mut self, peer: NodeId, secs: f64) {
        self.comm_estimates
            .entry(peer)
            .or_insert_with(|| Ewma::new(self.ewma_alpha))
            .observe(secs);
    }

    /// Current communication-time estimate towards a peer.
    pub fn comm_estimate(&self, peer: NodeId) -> Option<f64> {
        self.comm_estimates.get(&peer).and_then(|e| e.value())
    }

    // ---- dependencies (§3.2 item 5) ---------------------------------------

    /// Records that this peer now serves `peer` (downstream consumer).
    pub fn add_downstream(&mut self, peer: NodeId) {
        self.serving_to.insert(peer);
    }

    /// Records that `peer` now serves this peer (upstream provider).
    pub fn add_upstream(&mut self, peer: NodeId) {
        self.served_by.insert(peer);
    }

    /// Drops a dependency in both directions (session ended or peer left).
    pub fn remove_dependency(&mut self, peer: NodeId) {
        self.serving_to.remove(&peer);
        self.served_by.remove(&peer);
    }

    /// Peers currently receiving services from this peer.
    pub fn downstream(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.serving_to.iter().copied()
    }

    /// Peers currently offering services to this peer.
    pub fn upstream(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.served_by.iter().copied()
    }

    // ---- reporting (§4.4) --------------------------------------------------

    /// Builds a load report at `now` (unconditionally).
    pub fn make_report(&self, now: SimTime) -> LoadReport {
        LoadReport {
            node: self.node,
            at: now,
            load: self.load(),
            capacity: self.capacity,
            bandwidth_used_kbps: self.session_bw_kbps,
            bandwidth_capacity_kbps: self.bw_capacity_kbps,
            queue_len: self.queue_len,
        }
    }

    /// Returns a report if the periodic schedule is due at `now`.
    pub fn maybe_report(&mut self, now: SimTime) -> Option<LoadReport> {
        if self.report_timer.fire(now) {
            Some(self.make_report(now))
        } else {
            None
        }
    }

    /// Next instant a periodic report is due.
    pub fn next_report_at(&self) -> SimTime {
        self.report_timer.next_due()
    }

    /// Adjusts the report period ("the application QoS requirements
    /// determine the appropriate update frequency", §4.4).
    pub fn set_report_period(&mut self, period: SimDuration) {
        self.report_timer.set_period(period);
    }

    /// Records the profiler's instantaneous state into a telemetry
    /// recorder: one `peer_utilization` histogram sample (overlay-wide
    /// load distribution) and a per-peer `peer_load` gauge. A no-op when
    /// the recorder is disabled.
    pub fn record_metrics(&self, recorder: &mut Recorder) {
        recorder.observe(
            "peer_utilization",
            Labels::NONE,
            UTILIZATION_BOUNDS,
            self.utilization(),
        );
        recorder.set_gauge("peer_load", Labels::peer(self.node), self.load());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_metrics_feeds_utilization_histogram_and_load_gauge() {
        let mut p = Profiler::new(NodeId::new(1), 100.0, 10_000, SimDuration::from_secs(1));
        p.session_opened(60.0, 500);
        let mut rec = Recorder::enabled(16);
        p.record_metrics(&mut rec);
        let snap = rec.snapshot();
        let hist = snap
            .histogram("peer_utilization")
            .expect("utilization histogram");
        assert_eq!(hist.total(), 1);
        // 0.6 utilization lands in the (0.5, 0.75] bucket.
        assert_eq!(hist.bounds(), UTILIZATION_BOUNDS);
        let gauge = snap
            .gauges
            .iter()
            .find(|g| g.key.starts_with("peer_load"))
            .expect("load gauge");
        assert!((gauge.value - 60.0).abs() < 1e-9);
        // Disabled recorder: nothing recorded, nothing allocated.
        let mut off = Recorder::disabled();
        p.record_metrics(&mut off);
        assert!(off.snapshot().histograms.is_empty());
    }

    fn profiler() -> Profiler {
        Profiler::new(NodeId::new(7), 100.0, 1_000, SimDuration::from_secs(1))
    }

    #[test]
    fn load_accounting_roundtrip() {
        let mut p = profiler();
        assert_eq!(p.load(), 0.0);
        p.session_opened(30.0, 500);
        p.session_opened(20.0, 300);
        assert!((p.load() - 50.0).abs() < 1e-12);
        assert_eq!(p.bandwidth_used_kbps(), 800);
        assert!((p.utilization() - 0.5).abs() < 1e-12);
        assert!((p.available_capacity() - 50.0).abs() < 1e-12);
        p.session_closed(30.0, 500);
        assert!((p.load() - 20.0).abs() < 1e-12);
        assert_eq!(p.bandwidth_used_kbps(), 300);
    }

    #[test]
    fn close_clamps_at_zero() {
        let mut p = profiler();
        p.session_opened(10.0, 100);
        p.session_closed(50.0, 700);
        assert_eq!(p.load(), 0.0);
        assert_eq!(p.bandwidth_used_kbps(), 0);
    }

    #[test]
    fn transient_load_adds() {
        let mut p = profiler();
        p.session_opened(40.0, 0);
        p.set_transient(10.0, 3);
        assert!((p.load() - 50.0).abs() < 1e-12);
        let r = p.make_report(SimTime::from_secs(2));
        assert_eq!(r.queue_len, 3);
        assert!((r.load - 50.0).abs() < 1e-12);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn execution_estimates_converge() {
        let mut p = profiler();
        let s = ServiceId::new(1);
        assert_eq!(p.execution_estimate(s), None);
        for _ in 0..50 {
            p.observe_execution(s, 0.25);
        }
        assert!((p.execution_estimate(s).unwrap() - 0.25).abs() < 1e-6);
        // Independent services tracked separately.
        p.observe_execution(ServiceId::new(2), 1.0);
        assert!((p.execution_estimate(ServiceId::new(2)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comm_estimates_tracked_per_peer() {
        let mut p = profiler();
        p.observe_comm(NodeId::new(1), 0.020);
        p.observe_comm(NodeId::new(2), 0.100);
        assert!((p.comm_estimate(NodeId::new(1)).unwrap() - 0.020).abs() < 1e-12);
        assert!((p.comm_estimate(NodeId::new(2)).unwrap() - 0.100).abs() < 1e-12);
        assert_eq!(p.comm_estimate(NodeId::new(3)), None);
    }

    #[test]
    fn dependencies() {
        let mut p = profiler();
        p.add_downstream(NodeId::new(1));
        p.add_downstream(NodeId::new(2));
        p.add_upstream(NodeId::new(3));
        assert_eq!(p.downstream().count(), 2);
        assert_eq!(p.upstream().count(), 1);
        p.remove_dependency(NodeId::new(1));
        p.remove_dependency(NodeId::new(3));
        assert_eq!(p.downstream().count(), 1);
        assert_eq!(p.upstream().count(), 0);
    }

    #[test]
    fn periodic_reports() {
        let mut p = profiler();
        assert!(p.maybe_report(SimTime::from_millis(500)).is_none());
        let r = p.maybe_report(SimTime::from_secs(1)).unwrap();
        assert_eq!(r.node, NodeId::new(7));
        assert_eq!(r.at, SimTime::from_secs(1));
        // Not due again immediately.
        assert!(p.maybe_report(SimTime::from_secs(1)).is_none());
        assert_eq!(p.next_report_at(), SimTime::from_secs(2));
        // Period change takes effect.
        p.set_report_period(SimDuration::from_secs(5));
        assert!(p.maybe_report(SimTime::from_secs(2)).is_some());
        assert_eq!(p.next_report_at(), SimTime::from_secs(7));
    }

    #[test]
    fn report_capacity_fields() {
        let p = profiler();
        let r = p.make_report(SimTime::ZERO);
        assert_eq!(r.capacity, 100.0);
        assert_eq!(r.bandwidth_capacity_kbps, 1_000);
        assert_eq!(r.utilization(), 0.0);
    }
}
