//! Satellite: 8-peer loopback TCP cluster, end to end.
//!
//! Eight peers, each with its own [`TcpTransport`] on `127.0.0.1:0`, run
//! the unmodified sans-I/O protocol over real sockets: the overlay forms,
//! an RM is elected, a transcoding task is allocated, and the cluster
//! survives one killed connection (the link redials and the session keeps
//! working). Every wait is bounded by a hard deadline so a wedged cluster
//! fails the test instead of hanging CI.

use adaptive_p2p_rm::core::ProtocolConfig;
use adaptive_p2p_rm::model::{MediaFormat, MediaObject, QosSpec, ServiceSpec, TaskSpec};
use adaptive_p2p_rm::runtime::net::{NetCluster, NetPeerConfig};
use adaptive_p2p_rm::runtime::{PeerSpawn, Telemetry};
use adaptive_p2p_rm::telemetry::TraceKind;
use adaptive_p2p_rm::util::{NodeId, ObjectId, ServiceId, SimDuration, SimTime, TaskId};
use adaptive_p2p_rm::wire::TcpOptions;
use std::time::{Duration, Instant};

const PEERS: u64 = 8;
const HARD_TIMEOUT: Duration = Duration::from_secs(30);

fn fast_protocol() -> ProtocolConfig {
    ProtocolConfig {
        heartbeat_period: SimDuration::from_millis(100),
        heartbeat_timeout: SimDuration::from_millis(400),
        report_period: SimDuration::from_millis(100),
        gossip_period: SimDuration::from_millis(400),
        backup_period: SimDuration::from_millis(200),
        adapt_period: SimDuration::from_millis(400),
        join_timeout: SimDuration::from_millis(400),
        compose_timeout: SimDuration::from_millis(1000),
        sched_poll: SimDuration::from_millis(10),
        ..ProtocolConfig::default()
    }
}

fn intermediate_format() -> MediaFormat {
    use adaptive_p2p_rm::model::{Codec, Resolution};
    MediaFormat::new(Codec::Mpeg2, Resolution::VGA, 256)
}

/// Peer 1 founds; peer 2 hosts the source object plus the stage-1
/// transcoder; peer 3 offers the stage-2 transcoder; everyone else joins
/// with spare capacity.
fn spawns() -> Vec<PeerSpawn> {
    (1..=PEERS)
        .map(|i| {
            let mut spawn = PeerSpawn {
                id: NodeId::new(i),
                capacity: 100.0,
                bandwidth_kbps: 10_000,
                objects: Vec::new(),
                services: Vec::new(),
                bootstrap: (i > 1).then(|| NodeId::new(1)),
            };
            if i == 2 {
                spawn.objects = vec![MediaObject::new(
                    ObjectId::new(1),
                    "demo-movie",
                    MediaFormat::paper_source(),
                    60.0,
                )];
                spawn.services = vec![ServiceSpec::transcoder(
                    ServiceId::new(1),
                    MediaFormat::paper_source(),
                    intermediate_format(),
                    5.0,
                )];
            }
            if i == 3 {
                spawn.services = vec![ServiceSpec::transcoder(
                    ServiceId::new(2),
                    intermediate_format(),
                    MediaFormat::paper_target(),
                    5.0,
                )];
            }
            spawn
        })
        .collect()
}

fn demo_task(requester: NodeId) -> TaskSpec {
    TaskSpec {
        id: TaskId::new(1),
        name: "demo-movie".into(),
        requester,
        initial_format: MediaFormat::paper_source(),
        acceptable_formats: vec![MediaFormat::paper_target()],
        qos: QosSpec::with_deadline(SimDuration::from_secs(10)),
        submitted_at: SimTime::ZERO,
        session_secs: 60.0,
    }
}

fn count_kind(telemetry: &Telemetry, want: &str) -> usize {
    telemetry
        .traces
        .iter()
        .filter(|ev| ev.kind.name() == want)
        .count()
}

/// Polls `check` until it returns true or the shared deadline expires.
fn wait_for(deadline: Instant, what: &str, mut check: impl FnMut() -> bool) {
    while !check() {
        assert!(
            Instant::now() < deadline,
            "timed out after {HARD_TIMEOUT:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn eight_peer_cluster_allocates_over_tcp_and_survives_a_killed_link() {
    let deadline = Instant::now() + HARD_TIMEOUT;
    let config = NetPeerConfig {
        protocol: fast_protocol(),
        ..NetPeerConfig::default()
    };
    let cluster =
        NetCluster::start(spawns(), &config, TcpOptions::default()).expect("cluster binds");

    // Overlay forms: all seven joiners accepted, exactly one RM elected.
    wait_for(deadline, "overlay formation", || {
        let t = cluster.telemetry();
        count_kind(&t, "join_accepted") >= (PEERS - 1) as usize
    });
    let t = cluster.telemetry();
    assert!(
        count_kind(&t, "rm_elected") >= 1,
        "overlay formed but no RM was elected"
    );
    let rm = t
        .traces
        .iter()
        .find_map(|ev| matches!(ev.kind, TraceKind::RmElected { .. }).then_some(ev.peer))
        .expect("rm_elected trace names the emitting RM");

    // Fault injection: kill a joiner's live connection to the RM. The
    // writer thread must redial transparently on the next heartbeat.
    let victim = cluster
        .ids()
        .into_iter()
        .find(|&id| id != rm)
        .expect("at least one non-RM peer");
    cluster.kill_link(victim, rm);
    wait_for(deadline, "link reconnect after kill", || {
        cluster
            .transport_stats()
            .iter()
            .any(|s| s.node == victim && s.reconnects() >= 1)
    });

    // The task still allocates end to end over the healed overlay.
    let requester = NodeId::new(PEERS);
    cluster.submit(requester, demo_task(requester));
    wait_for(deadline, "task allocation reply", || {
        cluster
            .telemetry()
            .replies
            .iter()
            .any(|&(task, allocated, _)| task == TaskId::new(1) && allocated)
    });

    let stats = cluster.shutdown();
    let decode_errors: u64 = stats.iter().map(|s| s.decode_errors).sum();
    assert_eq!(decode_errors, 0, "wire decode errors over loopback TCP");
    let total_msgs: u64 = stats.iter().map(|s| s.msgs_out()).sum();
    assert!(total_msgs > 0, "no messages crossed the transports");
}
