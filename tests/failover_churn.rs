//! Workspace-level integration: dynamics — churn, failover, repair.

use adaptive_p2p_rm::net::churn::ChurnParams;
use adaptive_p2p_rm::sim::{ScenarioConfig, Simulation};
use adaptive_p2p_rm::util::{SimDuration, SimTime};

fn churny(seed: u64, crash_fraction: f64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        seed,
        clusters: 2,
        peers_per_cluster: 8,
        horizon: SimTime::from_secs(150),
        warmup: SimDuration::from_secs(5),
        ..ScenarioConfig::default()
    };
    cfg.workload.arrival_rate = 0.4;
    cfg.workload.session_mean_secs = 60.0;
    cfg.churn = Some(ChurnParams {
        mean_uptime_secs: 50.0,
        mean_downtime_secs: 20.0,
        crash_fraction,
        churning_fraction: 0.7,
    });
    cfg
}

#[test]
fn overlay_survives_crash_churn() {
    let report = Simulation::new(churny(21, 1.0)).run();
    // The overlay keeps serving: some tasks complete despite churn.
    assert!(
        report.outcomes.on_time > 0,
        "nothing completed under churn: {:?}",
        report.outcomes
    );
    // At least one RM is alive at the end.
    assert!(report.final_domains >= 1);
    // Liveness machinery fired.
    assert!(
        report.promotions + report.repairs_ok + report.repairs_failed > 0,
        "no failover/repair activity: {report:?}"
    );
}

#[test]
fn graceful_churn_is_cheaper_than_crashes() {
    let crash = Simulation::new(churny(22, 1.0)).run();
    let graceful = Simulation::new(churny(22, 0.0)).run();
    // Graceful leaves are announced, so nothing waits for heartbeat
    // timeouts; completion should not be worse by more than noise.
    assert!(
        graceful.outcomes.goodput() >= crash.outcomes.goodput() - 0.15,
        "graceful {:.2} vs crash {:.2}",
        graceful.outcomes.goodput(),
        crash.outcomes.goodput()
    );
}

#[test]
fn churned_peers_rejoin() {
    let report = Simulation::new(churny(23, 1.0)).run();
    // With rejoin enabled, the final population stays near full strength
    // (downtime is short relative to uptime).
    assert!(
        report.final_peers >= 10,
        "population collapsed: {}",
        report.final_peers
    );
}
