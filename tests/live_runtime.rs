//! Workspace-level integration: the live threaded runtime through the
//! facade crate, and sim/live agreement on protocol behaviour.

use adaptive_p2p_rm::core::ProtocolConfig;
use adaptive_p2p_rm::model::{
    Codec, MediaFormat, MediaObject, QosSpec, Resolution, ServiceSpec, TaskSpec,
};
use adaptive_p2p_rm::runtime::{PeerSpawn, Runtime, RuntimeConfig};
use adaptive_p2p_rm::util::{NodeId, ObjectId, ServiceId, SimDuration, SimTime, TaskId};
use std::time::{Duration, Instant};

fn fast_protocol() -> ProtocolConfig {
    ProtocolConfig {
        heartbeat_period: SimDuration::from_millis(50),
        heartbeat_timeout: SimDuration::from_millis(200),
        report_period: SimDuration::from_millis(50),
        gossip_period: SimDuration::from_millis(200),
        backup_period: SimDuration::from_millis(100),
        adapt_period: SimDuration::from_millis(200),
        join_timeout: SimDuration::from_millis(200),
        compose_timeout: SimDuration::from_millis(500),
        sched_poll: SimDuration::from_millis(5),
        ..ProtocolConfig::default()
    }
}

#[test]
fn live_overlay_completes_a_transcode() {
    let (mut rt, cfg) = Runtime::new(RuntimeConfig {
        latency: SimDuration::from_millis(1),
        protocol: fast_protocol(),
    });
    let intermediate = MediaFormat::new(Codec::Mpeg2, Resolution::VGA, 256);
    rt.spawn_peer(
        PeerSpawn {
            id: NodeId::new(1),
            capacity: 100.0,
            bandwidth_kbps: 10_000,
            objects: vec![],
            services: vec![],
            bootstrap: None,
        },
        &cfg.protocol,
        1,
    );
    std::thread::sleep(Duration::from_millis(50));
    rt.spawn_peer(
        PeerSpawn {
            id: NodeId::new(2),
            capacity: 100.0,
            bandwidth_kbps: 10_000,
            objects: vec![MediaObject::new(
                ObjectId::new(1),
                "clip",
                MediaFormat::paper_source(),
                30.0,
            )],
            services: vec![ServiceSpec::transcoder(
                ServiceId::new(1),
                MediaFormat::paper_source(),
                intermediate,
                5.0,
            )],
            bootstrap: Some(NodeId::new(1)),
        },
        &cfg.protocol,
        1,
    );
    rt.spawn_peer(
        PeerSpawn {
            id: NodeId::new(3),
            capacity: 100.0,
            bandwidth_kbps: 10_000,
            objects: vec![],
            services: vec![ServiceSpec::transcoder(
                ServiceId::new(2),
                intermediate,
                MediaFormat::paper_target(),
                5.0,
            )],
            bootstrap: Some(NodeId::new(1)),
        },
        &cfg.protocol,
        1,
    );
    std::thread::sleep(Duration::from_millis(300));

    rt.submit(
        NodeId::new(3),
        TaskSpec {
            id: TaskId::new(7),
            name: "clip".into(),
            requester: NodeId::new(3),
            initial_format: MediaFormat::paper_source(),
            acceptable_formats: vec![MediaFormat::paper_target()],
            qos: QosSpec::with_deadline(SimDuration::from_secs(5)),
            submitted_at: SimTime::ZERO,
            session_secs: 0.5,
        },
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let t = rt.telemetry();
        if t.outcomes
            .iter()
            .any(|(id, o, _)| *id == TaskId::new(7) && o.is_completed())
        {
            break;
        }
        assert!(Instant::now() < deadline, "live transcode timed out: {t:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    rt.shutdown();
}

#[test]
fn live_graceful_leave_is_announced() {
    let (mut rt, cfg) = Runtime::new(RuntimeConfig {
        latency: SimDuration::from_millis(1),
        protocol: fast_protocol(),
    });
    for (id, boot) in [(1u64, None), (2, Some(1)), (3, Some(1))] {
        rt.spawn_peer(
            PeerSpawn {
                id: NodeId::new(id),
                capacity: 100.0,
                bandwidth_kbps: 10_000,
                objects: vec![],
                services: vec![],
                bootstrap: boot.map(NodeId::new),
            },
            &cfg.protocol,
            1,
        );
        std::thread::sleep(Duration::from_millis(30));
    }
    std::thread::sleep(Duration::from_millis(200));
    let before = rt.telemetry().messages;
    rt.leave(NodeId::new(3));
    std::thread::sleep(Duration::from_millis(200));
    // The leave produced protocol traffic (the announcement) and the
    // remaining overlay keeps heartbeating.
    let after = rt.telemetry().messages;
    assert!(after > before);
    rt.shutdown();
}
