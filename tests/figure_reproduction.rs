//! Workspace-level integration: the paper's figures reproduce through the
//! public API (the executable counterpart of EXPERIMENTS.md E1–E3).

use adaptive_p2p_rm::model::alloc::{AllocatorKind, FairnessAllocator};
use adaptive_p2p_rm::model::{allocate, MediaFormat, PeerInfo, PeerView, QosSpec, ResourceGraph};
use adaptive_p2p_rm::util::{fairness_index, NodeId, SimDuration};

fn idle_view() -> PeerView {
    let mut view = PeerView::new();
    for p in 1..=5u64 {
        view.upsert(NodeId::new(p), PeerInfo::idle(100.0, 10_000));
    }
    view
}

#[test]
fn figure1_paths_and_allocation() {
    let (gr, e) = ResourceGraph::figure1();
    let view = idle_view();
    let init = gr.state_of(MediaFormat::paper_source()).unwrap();
    let goal = gr.state_of(MediaFormat::paper_target()).unwrap();
    let qos = QosSpec::with_deadline(SimDuration::from_secs(10));
    let alloc = allocate(&gr, &view, init, &[goal], &qos).unwrap();
    let valid = [
        vec![e[0], e[1]],
        vec![e[0], e[2]],
        vec![e[0], e[3], e[4], e[7]],
    ];
    assert!(valid.contains(&alloc.path), "path {:?}", alloc.path);
}

#[test]
fn figure3_fairness_argmax_is_verifiable() {
    // Pre-load one peer; the chosen allocation's fairness must equal the
    // best fairness over the three candidate paths, computed by hand.
    let (gr, e) = ResourceGraph::figure1();
    let mut view = idle_view();
    view.get_mut(NodeId::new(2)).unwrap().load = 60.0;
    let init = gr.state_of(MediaFormat::paper_source()).unwrap();
    let goal = gr.state_of(MediaFormat::paper_target()).unwrap();
    let qos = QosSpec::with_deadline(SimDuration::from_secs(10));
    let alloc = allocate(&gr, &view, init, &[goal], &qos).unwrap();

    let ids: Vec<NodeId> = view.ids().collect();
    let best = [
        vec![e[0], e[1]],
        vec![e[0], e[2]],
        vec![e[0], e[3], e[4], e[7]],
    ]
    .iter()
    .map(|p| {
        let mut loads = view.loads();
        for &eid in p {
            let edge = gr.edge(eid);
            let i = ids.iter().position(|n| *n == edge.peer).unwrap();
            loads[i] += edge.cost.work_per_sec;
        }
        fairness_index(&loads)
    })
    .fold(f64::MIN, f64::max);
    assert!((alloc.fairness - best).abs() < 1e-12);
}

#[test]
fn all_allocator_kinds_solve_figure1() {
    let (gr, _) = ResourceGraph::figure1();
    let view = idle_view();
    let init = gr.state_of(MediaFormat::paper_source()).unwrap();
    let goal = gr.state_of(MediaFormat::paper_target()).unwrap();
    let qos = QosSpec::with_deadline(SimDuration::from_secs(10));
    for kind in [
        AllocatorKind::MaxFairness,
        AllocatorKind::FirstFeasible,
        AllocatorKind::LeastLoaded,
        AllocatorKind::MinWork,
    ] {
        let alloc = FairnessAllocator::with_kind(kind)
            .allocate(&gr, &view, init, &[goal], &qos, None)
            .unwrap_or_else(|e| panic!("{kind:?} failed: {e}"));
        assert!(!alloc.path.is_empty());
    }
}

#[test]
fn experiment_tables_regenerate() {
    // The experiment library entry points run in quick mode and yield
    // non-empty tables (the binaries print exactly these).
    assert!(!arm_experiments::e01_figure1::run(true).is_empty());
    assert!(!arm_experiments::e02_figure2::run(true)[0].is_empty());
    assert!(!arm_experiments::e08_scheduling::run(true)[0].is_empty());
}
