//! Tentpole: cross-node causal timelines over live TCP.
//!
//! Eight peers run as real networked nodes. A task is submitted, travels
//! requester → RM → allocation → composition → stream, and every node
//! records its part of the journey in its own in-memory flight recorder.
//! The test then plays observer: it queries each node's status endpoint
//! over the wire (the same `StatusRequest` frames `arm trace` sends),
//! merges the per-node rings into one causally ordered timeline, and
//! reconstructs the task's full submit→terminal chain — proving the trace
//! context survived every hop between processes-worth of state machines.
//!
//! The whole procedure runs twice, from two fresh clusters; the causal
//! *shape* of the reconstructed chain (phase sequence and where each
//! phase ran relative to the requester) must come out identical.

use adaptive_p2p_rm::core::ProtocolConfig;
use adaptive_p2p_rm::model::{MediaFormat, MediaObject, QosSpec, ServiceSpec, TaskSpec};
use adaptive_p2p_rm::runtime::net::{NetCluster, NetPeerConfig, PulseConfig};
use adaptive_p2p_rm::runtime::PeerSpawn;
use adaptive_p2p_rm::telemetry::{merge_timeline, TaskPhase, TraceEvent, TraceKind};
use adaptive_p2p_rm::util::{NodeId, ObjectId, ServiceId, SimDuration, SimTime, TaskId};
use adaptive_p2p_rm::wire::{query_status, TcpOptions};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

const PEERS: u64 = 8;
/// Generous: the test runs two full cluster lifecycles and shares the
/// machine with the rest of the (parallel) test suite.
const HARD_TIMEOUT: Duration = Duration::from_secs(60);
/// Node id the observer identifies as on the wire (never a cluster peer).
const OBSERVER: NodeId = NodeId::new(u64::MAX);

fn fast_protocol() -> ProtocolConfig {
    ProtocolConfig {
        heartbeat_period: SimDuration::from_millis(100),
        heartbeat_timeout: SimDuration::from_millis(400),
        report_period: SimDuration::from_millis(100),
        gossip_period: SimDuration::from_millis(400),
        backup_period: SimDuration::from_millis(200),
        adapt_period: SimDuration::from_millis(400),
        join_timeout: SimDuration::from_millis(400),
        compose_timeout: SimDuration::from_millis(1000),
        sched_poll: SimDuration::from_millis(10),
        ..ProtocolConfig::default()
    }
}

fn intermediate_format() -> MediaFormat {
    use adaptive_p2p_rm::model::{Codec, Resolution};
    MediaFormat::new(Codec::Mpeg2, Resolution::VGA, 256)
}

/// Peer 1 founds; peer 2 hosts the source object plus the stage-1
/// transcoder; peer 3 offers the stage-2 transcoder — so the composed
/// path necessarily crosses nodes.
fn spawns() -> Vec<PeerSpawn> {
    (1..=PEERS)
        .map(|i| {
            let mut spawn = PeerSpawn {
                id: NodeId::new(i),
                capacity: 100.0,
                bandwidth_kbps: 10_000,
                objects: Vec::new(),
                services: Vec::new(),
                bootstrap: (i > 1).then(|| NodeId::new(1)),
            };
            if i == 2 {
                spawn.objects = vec![MediaObject::new(
                    ObjectId::new(1),
                    "demo-movie",
                    MediaFormat::paper_source(),
                    60.0,
                )];
                spawn.services = vec![ServiceSpec::transcoder(
                    ServiceId::new(1),
                    MediaFormat::paper_source(),
                    intermediate_format(),
                    5.0,
                )];
            }
            if i == 3 {
                spawn.services = vec![ServiceSpec::transcoder(
                    ServiceId::new(2),
                    intermediate_format(),
                    MediaFormat::paper_target(),
                    5.0,
                )];
            }
            spawn
        })
        .collect()
}

fn demo_task(requester: NodeId) -> TaskSpec {
    TaskSpec {
        id: TaskId::new(1),
        name: "demo-movie".into(),
        requester,
        initial_format: MediaFormat::paper_source(),
        acceptable_formats: vec![MediaFormat::paper_target()],
        qos: QosSpec::with_deadline(SimDuration::from_secs(10)),
        submitted_at: SimTime::ZERO,
        session_secs: 60.0,
    }
}

fn wait_for(deadline: Instant, what: &str, mut check: impl FnMut() -> bool) {
    while !check() {
        assert!(
            Instant::now() < deadline,
            "timed out after {HARD_TIMEOUT:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Pulls every node's flight-recorder ring over the wire, exactly as
/// `arm trace` does: one `StatusRequest` per listen address.
fn collect_rings(addrs: &[(NodeId, String)]) -> Vec<TraceEvent> {
    addrs
        .iter()
        .flat_map(|(id, addr)| {
            let report = query_status(addr, OBSERVER, true, Duration::from_secs(5))
                .unwrap_or_else(|e| panic!("status query to {id:?} at {addr}: {e:?}"));
            assert_eq!(report.node, *id, "status answered by the wrong node");
            report.trace.expect("ring requested but not returned")
        })
        .collect()
}

/// The task's causal chain, reduced to its run-independent shape: the
/// phases in causal order, each tagged with whether it ran on the
/// requester or was recorded remotely.
#[derive(Debug, PartialEq, Eq)]
struct ChainShape {
    phases: Vec<(&'static str, bool)>,
    cross_node: bool,
}

/// Reconstructs task 1's chain from a merged timeline: finds the trace
/// that carries its Submit, checks causal integrity (every parent span
/// resolves inside the trace) and returns the canonical shape.
fn reconstruct_chain(merged: &[TraceEvent], requester: NodeId) -> ChainShape {
    let mut by_trace: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in merged {
        if ev.trace_id != 0 {
            by_trace.entry(ev.trace_id).or_default().push(ev);
        }
    }
    // The attempt that went the distance: its trace holds both the root
    // submission and the stream/terminal end (a rejected attempt, if the
    // first query raced the cluster warm-up, holds only the former).
    let phase_of = |ev: &TraceEvent, wanted: &[TaskPhase]| {
        matches!(
            ev.kind,
            TraceKind::TaskPhase { task, phase }
                if task == TaskId::new(1) && wanted.contains(&phase)
        )
    };
    let chain = by_trace
        .into_values()
        .find(|events| {
            events.iter().any(|ev| phase_of(ev, &[TaskPhase::Submit]))
                && events
                    .iter()
                    .any(|ev| phase_of(ev, &[TaskPhase::Stream, TaskPhase::Terminal]))
        })
        .expect("merged timeline contains task 1's completed trace");

    // Causal integrity: every non-root event's parent is a span some
    // event in the same trace actually opened.
    let spans: BTreeSet<u64> = chain.iter().map(|ev| ev.span).collect();
    for ev in &chain {
        assert!(
            ev.parent == 0 || spans.contains(&ev.parent),
            "orphan parent {:#x} on {:?}",
            ev.parent,
            ev.kind
        );
    }

    let peers: BTreeSet<NodeId> = chain.iter().map(|ev| ev.peer).collect();
    let phases = chain
        .iter()
        .filter_map(|ev| match ev.kind {
            TraceKind::TaskPhase { task, phase } if task == TaskId::new(1) => {
                Some((phase.name(), ev.peer == requester))
            }
            _ => None,
        })
        .collect();
    ChainShape {
        phases,
        cross_node: peers.len() >= 2,
    }
}

/// One full cluster lifecycle: form, allocate, observe, tear down.
fn run_once() -> ChainShape {
    let deadline = Instant::now() + HARD_TIMEOUT;
    let config = NetPeerConfig {
        protocol: fast_protocol(),
        seed: 7,
        tracing: true,
        pulse: Some(PulseConfig::default()),
        store: None,
    };
    let cluster =
        NetCluster::start(spawns(), &config, TcpOptions::default()).expect("cluster binds");
    let addrs = cluster.listen_addrs();
    assert_eq!(addrs.len(), PEERS as usize);

    // Overlay forms before we submit (an RM exists to receive the query).
    wait_for(deadline, "overlay formation", || {
        let t = cluster.telemetry();
        t.traces
            .iter()
            .filter(|ev| matches!(ev.kind, TraceKind::JoinAccepted { .. }))
            .count()
            >= (PEERS - 1) as usize
    });

    // Submit, tolerating a slow or initially rejected allocation: on a
    // loaded machine the first query can race the joiners' inventory
    // advertisements, and the protocol never retries a rejected task on
    // its own. Each resubmission roots a fresh trace; the reconstruction
    // below picks the attempt that actually reached the session.
    let requester = NodeId::new(PEERS);
    let allocated = |cluster: &NetCluster| {
        cluster
            .telemetry()
            .replies
            .iter()
            .any(|&(task, ok, _)| task == TaskId::new(1) && ok)
    };
    while !allocated(&cluster) {
        cluster.submit(requester, demo_task(requester));
        let attempt = Instant::now() + Duration::from_secs(5);
        while !allocated(&cluster) && Instant::now() < attempt {
            assert!(
                Instant::now() < deadline,
                "timed out after {HARD_TIMEOUT:?} waiting for task allocation reply"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    // Observe over the wire until the terminal phase lands in some ring
    // (the composition ack and stream start trail the allocation reply).
    let mut merged = Vec::new();
    wait_for(deadline, "terminal phase in a flight recorder", || {
        merged = merge_timeline(collect_rings(&addrs));
        merged.iter().any(|ev| {
            matches!(
                ev.kind,
                TraceKind::TaskPhase {
                    task,
                    phase: TaskPhase::Stream | TaskPhase::Terminal,
                } if task == TaskId::new(1)
            )
        })
    });
    cluster.shutdown();

    // The merge is causally ordered (time, then peer/span tie-breaks).
    assert!(merged.windows(2).all(|w| w[0].at <= w[1].at));
    reconstruct_chain(&merged, requester)
}

#[test]
fn causal_timeline_reconstructs_identically_across_two_cluster_runs() {
    let first = run_once();

    // The chain is complete: it opens with Submit, crosses node
    // boundaries, and reaches the stream/terminal end of the lifecycle.
    assert_eq!(first.phases.first(), Some(&("submit", true)));
    assert!(
        first.phases.iter().any(|(p, _)| *p == "allocation"),
        "chain records the allocation phase: {:?}",
        first.phases
    );
    assert!(first.cross_node, "chain never left the requester");

    let second = run_once();
    assert_eq!(
        first, second,
        "causal chain shape must be reproducible across runs"
    );
}
