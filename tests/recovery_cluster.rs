//! Tentpole acceptance: kill-and-recover under churn, over real sockets.
//!
//! A 6-peer loopback cluster runs with `--state-dir`-style persistence
//! (a [`StoreConfig`] per peer). The elected RM is SIGKILL-style crashed
//! with [`NetCluster::stop_peer`] — no graceful shutdown, no final
//! snapshot — while a bystander peer churns away permanently. The RM is
//! then restarted against the *same* state directory: recovery loads the
//! periodic snapshot, replays the write-ahead log, re-announces with its
//! persisted epoch, and reconciles with whatever the survivors did in
//! the meantime (an interim backup promotion yields to the higher
//! epoch, or the recovered RM rejoins as a member if it lost the race).
//! Either way the overlay must end coherent: a task submitted after the
//! recovery allocates end to end.

use adaptive_p2p_rm::core::ProtocolConfig;
use adaptive_p2p_rm::model::{MediaFormat, MediaObject, QosSpec, ServiceSpec, TaskSpec};
use adaptive_p2p_rm::runtime::net::{NetCluster, NetPeerConfig, StoreConfig};
use adaptive_p2p_rm::runtime::{PeerSpawn, Telemetry};
use adaptive_p2p_rm::store;
use adaptive_p2p_rm::telemetry::TraceKind;
use adaptive_p2p_rm::util::{NodeId, ObjectId, ServiceId, SimDuration, SimTime, TaskId};
use adaptive_p2p_rm::wire::TcpOptions;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const PEERS: u64 = 6;
const HARD_TIMEOUT: Duration = Duration::from_secs(60);

fn fast_protocol() -> ProtocolConfig {
    ProtocolConfig {
        heartbeat_period: SimDuration::from_millis(100),
        heartbeat_timeout: SimDuration::from_millis(400),
        report_period: SimDuration::from_millis(100),
        gossip_period: SimDuration::from_millis(400),
        backup_period: SimDuration::from_millis(200),
        adapt_period: SimDuration::from_millis(400),
        join_timeout: SimDuration::from_millis(400),
        compose_timeout: SimDuration::from_millis(1000),
        sched_poll: SimDuration::from_millis(10),
        ..ProtocolConfig::default()
    }
}

fn intermediate_format() -> MediaFormat {
    use adaptive_p2p_rm::model::{Codec, Resolution};
    MediaFormat::new(Codec::Mpeg2, Resolution::VGA, 256)
}

/// Peer 1 founds (and so starts as RM); peer 2 hosts the source object
/// plus the stage-1 transcoder; peer 3 the stage-2 transcoder; 4 is the
/// churn victim; 5 and 6 submit tasks.
fn spawns() -> Vec<PeerSpawn> {
    (1..=PEERS)
        .map(|i| {
            let mut spawn = PeerSpawn {
                id: NodeId::new(i),
                capacity: 100.0,
                bandwidth_kbps: 10_000,
                objects: Vec::new(),
                services: Vec::new(),
                bootstrap: (i > 1).then(|| NodeId::new(1)),
            };
            if i == 2 {
                spawn.objects = vec![MediaObject::new(
                    ObjectId::new(1),
                    "demo-movie",
                    MediaFormat::paper_source(),
                    60.0,
                )];
                spawn.services = vec![ServiceSpec::transcoder(
                    ServiceId::new(1),
                    MediaFormat::paper_source(),
                    intermediate_format(),
                    5.0,
                )];
            }
            if i == 3 {
                spawn.services = vec![ServiceSpec::transcoder(
                    ServiceId::new(2),
                    intermediate_format(),
                    MediaFormat::paper_target(),
                    5.0,
                )];
            }
            spawn
        })
        .collect()
}

fn demo_task(id: u64, requester: NodeId) -> TaskSpec {
    TaskSpec {
        id: TaskId::new(id),
        name: "demo-movie".into(),
        requester,
        initial_format: MediaFormat::paper_source(),
        acceptable_formats: vec![MediaFormat::paper_target()],
        qos: QosSpec::with_deadline(SimDuration::from_secs(10)),
        submitted_at: SimTime::ZERO,
        session_secs: 60.0,
    }
}

fn count_kind(telemetry: &Telemetry, want: &str) -> usize {
    telemetry
        .traces
        .iter()
        .filter(|ev| ev.kind.name() == want)
        .count()
}

fn wait_for(deadline: Instant, what: &str, mut check: impl FnMut() -> bool) {
    while !check() {
        assert!(
            Instant::now() < deadline,
            "timed out after {HARD_TIMEOUT:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn crashed_rm_recovers_from_its_state_dir_under_churn() {
    let deadline = Instant::now() + HARD_TIMEOUT;
    let state_root: PathBuf =
        std::env::temp_dir().join(format!("arm-recovery-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_root);

    // Frequent snapshots so the crash happens with real durable state.
    let mut store_cfg = StoreConfig::new(&state_root);
    store_cfg.snapshot_period = Duration::from_millis(200);
    let config = NetPeerConfig {
        protocol: fast_protocol(),
        store: Some(store_cfg),
        ..NetPeerConfig::default()
    };

    let mut cluster =
        NetCluster::start(spawns(), &config, TcpOptions::default()).expect("cluster binds");

    // Overlay forms and elects an RM.
    wait_for(deadline, "overlay formation", || {
        let t = cluster.telemetry();
        count_kind(&t, "join_accepted") >= (PEERS - 1) as usize
    });
    let t = cluster.telemetry();
    let rm = t
        .traces
        .iter()
        .find_map(|ev| matches!(ev.kind, TraceKind::RmElected { .. }).then_some(ev.peer))
        .expect("rm_elected trace names the RM");

    // A task allocates, so the RM has sessions worth persisting.
    cluster.submit(NodeId::new(PEERS), demo_task(1, NodeId::new(PEERS)));
    wait_for(deadline, "first task allocation", || {
        cluster
            .telemetry()
            .replies
            .iter()
            .any(|&(task, allocated, _)| task == TaskId::new(1) && allocated)
    });

    // Wait until the RM's periodic snapshot (or at least its WAL) is on
    // disk — that is what recovery will boot from.
    let rm_dir = state_root.join(format!("node-{}", rm.raw()));
    wait_for(
        deadline,
        "a durable snapshot under the RM's state dir",
        || rm_dir.join(store::SNAPSHOT_FILE).exists(),
    );

    // Crash the RM — stop_peer is abrupt: no graceful shutdown event, no
    // final flush, exactly like SIGKILL. The state dir stays dirty.
    let promotions_before = cluster.telemetry().promotions.len();
    assert!(cluster.stop_peer(rm), "RM was in the cluster");
    let (snap, note) = store::snapshot::load_snapshot(&rm_dir);
    let snap = snap.expect("crashed RM left a readable snapshot");
    assert!(note.is_none(), "snapshot corrupt: {note:?}");
    assert!(
        !snap.clean,
        "periodic snapshots must not claim a clean shutdown"
    );

    // Churn: a bystander leaves for good while the RM is down.
    let bystander = NodeId::new(4);
    if bystander != rm {
        assert!(cluster.stop_peer(bystander), "bystander was in the cluster");
    }

    // Give the survivors time to notice the dead RM (heartbeat timeouts,
    // possibly an interim backup promotion — both are fine).
    std::thread::sleep(Duration::from_millis(600));

    // Restart the crashed RM against the same state dir. Its bootstrap
    // points at a survivor in case recovery decides to rejoin instead of
    // resuming the RM role (it lost an epoch race).
    let mut respawn = spawns()
        .into_iter()
        .find(|s| s.id == rm)
        .expect("spawn spec for the RM");
    respawn.bootstrap = Some(if rm == NodeId::new(2) {
        NodeId::new(3)
    } else {
        NodeId::new(2)
    });
    cluster
        .restart_peer(respawn, &config, TcpOptions::default())
        .expect("restarted peer binds");

    // Recovery signal: someone re-assumed RM duties after the crash —
    // the recovered RM itself (snapshot resume re-announces and records
    // a promotion) or an interim backup it then yields to.
    wait_for(deadline, "post-crash RM promotion", || {
        cluster.telemetry().promotions.len() > promotions_before
    });

    // The healed overlay still serves: a fresh task allocates end to end
    // with the recovered peer back in the mesh. A rejection is retried —
    // right after the promotion the members' re-advertisements may still
    // be in flight, and a real requester resubmits (§4.5).
    cluster.submit(NodeId::new(5), demo_task(2, NodeId::new(5)));
    let mut submissions = 1usize;
    let allocated = |t: &Telemetry| {
        t.replies
            .iter()
            .any(|&(task, allocated, _)| task == TaskId::new(2) && allocated)
    };
    while !allocated(&cluster.telemetry()) {
        let rejections = cluster
            .telemetry()
            .replies
            .iter()
            .filter(|&&(task, allocated, _)| task == TaskId::new(2) && !allocated)
            .count();
        if rejections >= submissions {
            cluster.submit(NodeId::new(5), demo_task(2, NodeId::new(5)));
            submissions += 1;
        }
        if Instant::now() >= deadline {
            let t = cluster.telemetry();
            let tail: Vec<String> = t
                .traces
                .iter()
                .rev()
                .take(40)
                .map(|ev| format!("{:?} {}", ev.peer, ev.kind.name()))
                .collect();
            panic!(
                "timed out waiting for post-recovery allocation; \
                 promotions={:?} replies={:?} trace tail={:#?}",
                t.promotions, t.replies, tail
            );
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    // With instrumented locks, also drive a status query over the wire:
    // answering it runs the reader-thread status path, where `tcp.status`
    // stays held while the provider locks `net.inner` — a nesting edge
    // that only exists at runtime, across a callback the static analysis
    // cannot connect.
    #[cfg(feature = "lock-witness")]
    {
        let addrs = cluster.listen_addrs();
        let (_, addr) = addrs
            .iter()
            .find(|(id, _)| *id == NodeId::new(5))
            .expect("peer 5 never churned");
        adaptive_p2p_rm::wire::query_status(addr, NodeId::new(999), true, Duration::from_secs(5))
            .expect("status query answers");
    }

    let stats = cluster.shutdown();
    let decode_errors: u64 = stats.iter().map(|s| s.decode_errors).sum();
    assert_eq!(decode_errors, 0, "wire decode errors over loopback TCP");
    let _ = std::fs::remove_dir_all(&state_root);

    #[cfg(feature = "lock-witness")]
    check_lock_witness();
}

/// With the `lock-witness` feature, the whole cluster ran on instrumented
/// locks. The recorded acquisition order must be violation-free, and its
/// union with the lock graph `arm-lint` infers statically must stay
/// acyclic — the runtime witness and the static analysis describing one
/// consistent ordering between them.
#[cfg(feature = "lock-witness")]
fn check_lock_witness() {
    use adaptive_p2p_rm::util::lockwitness;

    let recorded = lockwitness::recorded_edges();
    assert!(
        !recorded.is_empty(),
        "a full cluster run must exercise at least one nested acquisition"
    );
    lockwitness::assert_clean();

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let cfg = arm_lint::Config::workspace();
    let files = arm_lint::collect_files(root, &cfg);
    let mut union = arm_lint::locks::global_edges(&files);
    union.extend(recorded.iter().cloned());
    union.sort();
    union.dedup();
    if let Some(cycle) = arm_lint::locks::find_cycle(&union) {
        panic!(
            "static ∪ recorded lock graph has a cycle: {} (recorded: {recorded:?})",
            cycle.join(" → ")
        );
    }

    if let Ok(path) = std::env::var("ARM_LOCK_WITNESS_LOG") {
        lockwitness::write_log(std::path::Path::new(&path)).expect("write witness log");
    }
}
