//! Workspace-level integration: full simulated overlays through the
//! facade crate's public API.

use adaptive_p2p_rm::sim::{ScenarioConfig, Simulation};
use adaptive_p2p_rm::util::{SimDuration, SimTime};

fn scenario(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        seed,
        clusters: 2,
        peers_per_cluster: 8,
        horizon: SimTime::from_secs(90),
        warmup: SimDuration::from_secs(5),
        ..ScenarioConfig::default()
    };
    cfg.workload.arrival_rate = 0.5;
    cfg.workload.session_mean_secs = 30.0;
    cfg
}

#[test]
fn overlay_serves_most_tasks_on_time() {
    let report = Simulation::new(scenario(11)).run();
    assert!(report.submitted >= 20);
    assert!(
        report.outcomes.goodput() > 0.7,
        "goodput too low: {:?}",
        report.outcomes
    );
    assert_eq!(report.final_domains, 2);
    assert_eq!(report.final_peers, 16);
}

#[test]
fn deterministic_replay_through_facade() {
    let a = Simulation::new(scenario(12)).run();
    let b = Simulation::new(scenario(12)).run();
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.message_count(), b.message_count());
}

#[test]
fn fairness_stays_meaningful_under_load() {
    let mut cfg = scenario(13);
    cfg.workload.arrival_rate = 1.5;
    let report = Simulation::new(cfg).run();
    let mf = report.mean_fairness();
    assert!((0.2..=1.0).contains(&mf), "fairness out of range: {mf}");
    // Utilization is non-trivial under this load.
    assert!(report.mean_utilization() > 0.02);
}

#[test]
fn report_accounting_is_self_consistent() {
    let report = Simulation::new(scenario(14)).run();
    // Every terminal outcome belongs to a submitted task; composition can
    // still be in flight at the horizon, so allow slack.
    assert!(report.outcomes.total() <= report.submitted);
    assert!(report.outcomes.total() >= report.submitted / 2);
    // Message kinds contain the protocol staples.
    for kind in ["heartbeat", "load_report", "task_query", "compose"] {
        assert!(
            report.messages.contains_key(kind),
            "missing message kind {kind}: {:?}",
            report.messages.keys().collect::<Vec<_>>()
        );
    }
    // Byte counts are consistent with counts.
    for (kind, (count, bytes)) in &report.messages {
        assert!(bytes >= count, "{kind}: bytes {bytes} < count {count}");
    }
}
